//! The concentration-inequality toolbox of the paper's Sections 3–4, as
//! executable code.
//!
//! Two kinds of artefacts live here:
//!
//! 1. **Tail-bound evaluators** — [`chernoff_lower`], [`chernoff_upper`]
//!    (Theorem 3.1) and [`freedman_tail`] (Lemma 3.3, the
//!    variance-sensitive martingale inequality of Freedman/McDiarmid that
//!    powers the whole analysis). Experiments compare these predicted tail
//!    probabilities against measured failure rates.
//!
//! 2. **Martingale constructors** — [`bernoulli_z_sequence`] and
//!    [`reservoir_z_sequence`] build the exact random processes
//!    `Z_i^R = B_i^R − A_i^R` defined in the paper's equations (1) and
//!    §4.2, from a recorded game transcript. Tests and experiment E4
//!    verify *empirically* the three properties Claims 4.2 and 4.3 prove:
//!    increments have conditional mean zero, the conditional variance is
//!    bounded (`1/(n²p)` resp. `i/k`), and the increment magnitude is
//!    bounded (`1/(np)` resp. `i/k`).

/// Chernoff lower-tail bound (Theorem 3.1):
/// `Pr[X ≤ (1−δ)μ] ≤ exp(−δ²μ/2)`.
///
/// # Panics
///
/// Panics if `delta ∉ (0,1)` or `mu < 0`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&delta), "delta must be in (0,1)");
    assert!(mu >= 0.0, "mean must be non-negative");
    (-delta * delta * mu / 2.0).exp()
}

/// Chernoff upper-tail bound (Theorem 3.1):
/// `Pr[X ≥ (1+δ)μ] ≤ exp(−δ²μ/(2 + 2δ/3))`.
///
/// # Panics
///
/// Panics if `delta ≤ 0` or `mu < 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0, "delta must be positive");
    assert!(mu >= 0.0, "mean must be non-negative");
    (-delta * delta * mu / (2.0 + 2.0 * delta / 3.0)).exp()
}

/// One-sided Freedman/McDiarmid martingale tail (Lemma 3.3):
/// `Pr[X_n − X_0 ≥ λ] ≤ exp(−λ² / (2·Σσᵢ² + M·λ/3))`.
///
/// `var_sum` is `Σᵢ σᵢ²` (the sum of conditional variance bounds) and
/// `max_step` is `M` (the almost-sure increment bound).
///
/// # Panics
///
/// Panics on negative inputs.
pub fn freedman_tail(lambda: f64, var_sum: f64, max_step: f64) -> f64 {
    assert!(lambda >= 0.0 && var_sum >= 0.0 && max_step >= 0.0);
    if lambda == 0.0 {
        return 1.0;
    }
    (-(lambda * lambda) / (2.0 * var_sum + max_step * lambda / 3.0)).exp()
}

/// Two-sided version of [`freedman_tail`] (the "in particular" clause of
/// Lemma 3.3), capped at 1.
pub fn freedman_tail_two_sided(lambda: f64, var_sum: f64, max_step: f64) -> f64 {
    (2.0 * freedman_tail(lambda, var_sum, max_step)).min(1.0)
}

/// One round of a recorded game, restricted to what the martingales need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundEvent {
    /// Did the submitted element belong to the fixed range `R`?
    pub in_range: bool,
    /// `|R ∩ S_i|` — how many sampled elements lie in `R` *after* this
    /// round's update.
    pub range_in_sample: usize,
    /// `|S_i|` — sample size after this round.
    pub sample_size: usize,
}

/// Build the Bernoulli-sampling martingale `Z_i^R = B_i^R − A_i^R` of the
/// paper's equation (1):
///
/// `A_i = |R ∩ X_i| / n`, `B_i = |R ∩ S_i| / (n·p)`.
///
/// Returns the full sequence `Z_0 = 0, Z_1, …, Z_n`. Claim 4.2 proves this
/// is a martingale with `|Z_i − Z_{i−1}| ≤ 1/(n·p)` and conditional
/// variance `≤ 1/(n²·p)`; experiment E4 checks those properties on the
/// sequences this function produces.
///
/// # Panics
///
/// Panics if `p ∉ (0, 1]` or `events` is empty.
pub fn bernoulli_z_sequence(events: &[RoundEvent], p: f64) -> Vec<f64> {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
    assert!(!events.is_empty(), "need at least one round");
    let n = events.len() as f64;
    let mut z = Vec::with_capacity(events.len() + 1);
    z.push(0.0);
    let mut in_range_so_far = 0usize;
    for ev in events {
        if ev.in_range {
            in_range_so_far += 1;
        }
        let a = in_range_so_far as f64 / n;
        let b = ev.range_in_sample as f64 / (n * p);
        z.push(b - a);
    }
    z
}

/// Build the reservoir-sampling martingale of the paper's §4.2:
///
/// for `i > k`: `A_i = |R ∩ X_i|`, `B_i = (i/k)·|R ∩ S_i|`;
/// for `i ≤ k`: `A_i = B_i = |R ∩ X_i|` (the reservoir holds everything).
///
/// Returns `Z_0 = 0, Z_1, …, Z_n`. Claim 4.3 proves martingale-ness with
/// `|Z_i − Z_{i−1}| ≤ i/k` and conditional variance `≤ i/k`.
///
/// # Panics
///
/// Panics if `k == 0` or `events` is empty.
pub fn reservoir_z_sequence(events: &[RoundEvent], k: usize) -> Vec<f64> {
    assert!(k > 0, "reservoir capacity must be positive");
    assert!(!events.is_empty(), "need at least one round");
    let mut z = Vec::with_capacity(events.len() + 1);
    z.push(0.0);
    let mut in_range_so_far = 0usize;
    for (idx, ev) in events.iter().enumerate() {
        let i = idx + 1;
        if ev.in_range {
            in_range_so_far += 1;
        }
        let a = in_range_so_far as f64;
        let b = if i <= k {
            // Reservoir = stream prefix: B_i = |R ∩ X_i| by construction.
            debug_assert_eq!(ev.range_in_sample, in_range_so_far);
            in_range_so_far as f64
        } else {
            i as f64 / k as f64 * ev.range_in_sample as f64
        };
        z.push(b - a);
    }
    z
}

/// Summary statistics over a family of independently sampled martingale
/// paths, used to verify the claims empirically.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Largest `|Z_i − Z_{i−1}|` seen across all paths and rounds.
    pub max_abs_increment: f64,
    /// Mean of the final values `Z_n` across paths.
    pub mean_final: f64,
    /// Mean increment across all rounds and paths (≈ 0 for a martingale).
    pub mean_increment: f64,
    /// Largest per-round empirical variance of the increment across paths.
    pub max_round_variance: f64,
}

/// Compute [`PathStats`] for a set of equal-length martingale paths.
///
/// # Panics
///
/// Panics if `paths` is empty or the paths have unequal lengths.
pub fn path_stats(paths: &[Vec<f64>]) -> PathStats {
    assert!(!paths.is_empty(), "need at least one path");
    let len = paths[0].len();
    assert!(
        paths.iter().all(|p| p.len() == len),
        "all paths must have equal length"
    );
    assert!(len >= 2, "paths must contain at least one increment");
    let mut max_abs = 0.0f64;
    let mut sum_inc = 0.0f64;
    let mut count_inc = 0usize;
    let mut max_round_var = 0.0f64;
    for i in 1..len {
        let mut round_sum = 0.0;
        let mut round_sq = 0.0;
        for p in paths {
            let inc = p[i] - p[i - 1];
            max_abs = max_abs.max(inc.abs());
            round_sum += inc;
            round_sq += inc * inc;
            sum_inc += inc;
            count_inc += 1;
        }
        let m = paths.len() as f64;
        let var = round_sq / m - (round_sum / m).powi(2);
        max_round_var = max_round_var.max(var);
    }
    let mean_final = paths.iter().map(|p| p[len - 1]).sum::<f64>() / paths.len() as f64;
    PathStats {
        max_abs_increment: max_abs,
        mean_final,
        mean_increment: sum_inc / count_inc as f64,
        max_round_variance: max_round_var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{BernoulliSampler, ReservoirSampler, StreamSampler};

    #[test]
    fn chernoff_bounds_decrease_in_mu() {
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(10.0, 0.5));
    }

    #[test]
    fn chernoff_values_spotcheck() {
        // exp(-0.25*100/2) = exp(-12.5)
        assert!((chernoff_lower(100.0, 0.5) - (-12.5f64).exp()).abs() < 1e-18);
        // exp(-0.25*100/(2+1/3))
        let expect = (-25.0f64 / (2.0 + 1.0 / 3.0)).exp();
        assert!((chernoff_upper(100.0, 0.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn freedman_reduces_to_azuma_like_decay() {
        // Larger variance budget ⇒ weaker bound.
        assert!(freedman_tail(1.0, 10.0, 0.1) > freedman_tail(1.0, 1.0, 0.1));
        // λ = 0 gives the trivial bound.
        assert_eq!(freedman_tail(0.0, 5.0, 1.0), 1.0);
        assert_eq!(freedman_tail_two_sided(0.0, 5.0, 1.0), 1.0);
    }

    /// Record a Bernoulli game on a fixed stream and range, returning the
    /// per-round events for the martingale constructor.
    fn record_bernoulli(
        n: usize,
        p: f64,
        seed: u64,
        in_range: impl Fn(u64) -> bool,
    ) -> Vec<RoundEvent> {
        let mut s = BernoulliSampler::with_seed(p, seed);
        let mut events = Vec::with_capacity(n);
        let mut in_sample = 0usize;
        for x in 0..n as u64 {
            let obs = s.observe(x);
            if obs.stored() && in_range(x) {
                in_sample += 1;
            }
            events.push(RoundEvent {
                in_range: in_range(x),
                range_in_sample: in_sample,
                sample_size: s.sample().len(),
            });
        }
        events
    }

    fn record_reservoir(
        n: usize,
        k: usize,
        seed: u64,
        in_range: impl Fn(u64) -> bool + Copy,
    ) -> Vec<RoundEvent> {
        let mut s = ReservoirSampler::with_seed(k, seed);
        let mut events = Vec::with_capacity(n);
        for x in 0..n as u64 {
            s.observe(x);
            let cnt = s.sample().iter().filter(|&&v| in_range(v)).count();
            events.push(RoundEvent {
                in_range: in_range(x),
                range_in_sample: cnt,
                sample_size: s.sample().len(),
            });
        }
        events
    }

    #[test]
    fn bernoulli_z_is_empirically_mean_zero_with_bounded_steps() {
        let n = 500;
        let p = 0.2;
        let in_range = |x: u64| x.is_multiple_of(3);
        let paths: Vec<Vec<f64>> = (0..200)
            .map(|seed| bernoulli_z_sequence(&record_bernoulli(n, p, seed, in_range), p))
            .collect();
        let stats = path_stats(&paths);
        // Claim 4.2: |ΔZ| ≤ 1/(np).
        let m = 1.0 / (n as f64 * p);
        assert!(
            stats.max_abs_increment <= m + 1e-12,
            "step {} exceeds 1/(np) = {m}",
            stats.max_abs_increment
        );
        // Martingale ⇒ mean increment ~ 0 (CLT tolerance).
        assert!(
            stats.mean_increment.abs() < 3.0 * m / (200f64 * n as f64).sqrt() + 1e-6,
            "mean increment {} too large",
            stats.mean_increment
        );
        // Claim 4.2: per-round variance ≤ 1/(n²p); allow sampling noise.
        let var_bound = 1.0 / (n as f64 * n as f64 * p);
        assert!(
            stats.max_round_variance <= 2.0 * var_bound,
            "variance {} exceeds 2x bound {var_bound}",
            stats.max_round_variance
        );
    }

    #[test]
    fn reservoir_z_is_empirically_mean_zero_with_bounded_steps() {
        let n = 400;
        let k = 40;
        let in_range = |x: u64| x.is_multiple_of(2);
        let paths: Vec<Vec<f64>> = (0..200)
            .map(|seed| reservoir_z_sequence(&record_reservoir(n, k, seed, in_range), k))
            .collect();
        let stats = path_stats(&paths);
        // Claim 4.3: |ΔZ| ≤ i/k ≤ n/k.
        let m = n as f64 / k as f64;
        assert!(
            stats.max_abs_increment <= m + 1e-9,
            "step {} exceeds n/k = {m}",
            stats.max_abs_increment
        );
        // Mean of final Z across paths ≈ 0; |Z_n| can reach n/k·noise, so
        // normalize by n when checking.
        assert!(
            (stats.mean_final / n as f64).abs() < 0.05,
            "mean final {} too far from 0",
            stats.mean_final
        );
    }

    #[test]
    fn reservoir_z_prefix_phase_is_identically_zero() {
        // While i ≤ k the reservoir IS the stream, so Z_i = 0.
        let k = 50;
        let events = record_reservoir(50, k, 9, |x| x < 10);
        let z = reservoir_z_sequence(&events, k);
        assert!(z.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn path_stats_simple() {
        let paths = vec![vec![0.0, 1.0, 0.0], vec![0.0, -1.0, 0.0]];
        let s = path_stats(&paths);
        assert_eq!(s.max_abs_increment, 1.0);
        assert_eq!(s.mean_final, 0.0);
        assert_eq!(s.mean_increment, 0.0);
        assert_eq!(s.max_round_variance, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn path_stats_rejects_ragged() {
        let _ = path_stats(&[vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    fn freedman_predicts_reservoir_lemma41_bound() {
        // Reproduce the Lemma 4.1 (reservoir) arithmetic: with σᵢ² = i/k
        // and M = n/k, Pr[|Z_n| ≥ εn] ≤ 2·exp(−ε²k/2) for n ≥ 2.
        let n = 10_000.0;
        let k = 800.0;
        let eps = 0.1;
        let var_sum = (1..=n as usize).map(|i| i as f64 / k).sum::<f64>();
        let bound = freedman_tail_two_sided(eps * n, var_sum, n / k);
        let paper = 2.0 * (-eps * eps * k / 2.0).exp();
        // The paper's simplification is slightly looser; ours must be ≤ 2x theirs.
        assert!(bound <= paper * 2.0, "bound {bound} vs paper {paper}");
    }
}
