//! [`ShardedSummary`]: data-parallel ingestion over `K` independent
//! shards of any [`StreamSummary`], reassembled on demand through
//! [`MergeableSummary`].
//!
//! Elements are dealt to shards **round-robin by arrival index** — shard
//! `j` sees the subsequence at positions `≡ j (mod K)`. That routing rule
//! is what keeps the engine contract intact: `ingest_batch` hands each
//! shard exactly the per-shard subsequence that element-wise `ingest`
//! calls would, so batched and element-wise ingestion stay
//! state-identical, and batch split points never change the result.
//!
//! Above a size threshold, `ingest_batch` fans the shards out across a
//! `std::thread::scope` — each worker gathers its own stride of the batch
//! and drives its shard's batched hot path, giving near-linear scaling
//! for summaries with `Θ(n)` ingestion cost (deterministic sketches,
//! Count-Min, KLL). Summaries with sublinear batch paths (the gap-skipping
//! samplers) are already effectively free to ingest; sharding them is
//! about merge topology, not throughput.
//!
//! Shard seeds are derived deterministically from one base seed
//! ([`ShardedSummary::shard_seed`]), so a sharded run is exactly
//! reproducible. Queries ([`QuantileSummary`], [`FrequencySummary`]) merge
//! the shards on demand — clone + `K−1` merges per query — which is the
//! right trade for ingest-heavy, query-light deployments; cache
//! [`ShardedSummary::merged`] yourself if you query in a tight loop.

use crate::engine::merge::{merge_in_shard_order, MergeableSummary};
use crate::engine::snapshot::{self, SnapshotCodec, SnapshotError, SnapshotReader};
use crate::engine::summary::{FrequencySummary, QuantileSummary, StreamSummary};
use robust_sampling_streamgen::source::{for_each_chunk, StreamSource};

/// Batch length at or above which `ingest_batch` uses scoped worker
/// threads (one per shard). Below it, the per-shard strides are ingested
/// on the calling thread — spawning costs more than it saves.
const PARALLEL_BATCH_THRESHOLD: usize = 1 << 14;

/// `K` independent summaries fed round-robin, merged on demand.
#[derive(Debug, Clone)]
pub struct ShardedSummary<S> {
    shards: Vec<S>,
    /// Elements routed so far — the round-robin cursor.
    routed: usize,
    /// Minimum batch length for the scoped-thread fan-out.
    parallel_threshold: usize,
}

impl<S> ShardedSummary<S> {
    /// Build `shards` summaries via `factory(shard_index, shard_seed)`,
    /// with per-shard seeds derived from `base_seed` by
    /// [`shard_seed`](Self::shard_seed).
    ///
    /// Summaries whose merge requires *shared* randomness (Count-Min's
    /// hash functions) should ignore the derived seed and use a fixed one;
    /// samplers must use it so shard RNGs are decorrelated.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, base_seed: u64, mut factory: impl FnMut(usize, u64) -> S) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards: (0..shards)
                .map(|j| factory(j, Self::shard_seed(base_seed, j)))
                .collect(),
            routed: 0,
            parallel_threshold: PARALLEL_BATCH_THRESHOLD,
        }
    }

    /// Deterministic per-shard seed: SplitMix-style mix of the base seed
    /// and the shard index, so shard RNG streams are decorrelated from
    /// each other and from the base seed itself.
    pub fn shard_seed(base_seed: u64, shard: usize) -> u64 {
        let mut z = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Override the batch length at which ingestion fans out to worker
    /// threads (tests use this to force both paths).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard summaries, in shard order.
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Pull a lazy [`StreamSource`] dry in `frame`-sized frames through
    /// [`StreamSummary::ingest_batch`], returning the number of elements
    /// ingested. Memory is one frame plus the shards, never the stream —
    /// the fan-out path for 100M+-element sharded runs.
    ///
    /// # Panics
    ///
    /// Panics if `frame == 0`.
    pub fn ingest_source<T>(
        &mut self,
        source: &mut (impl StreamSource<T> + ?Sized),
        frame: usize,
    ) -> usize
    where
        T: Clone + Sync,
        S: StreamSummary<T> + Send,
    {
        for_each_chunk(source, frame, |chunk| self.ingest_batch(chunk))
    }

    /// Merge all shards into one summary of the full stream (clones the
    /// shards; the sharded structure stays intact for further ingestion).
    pub fn merged<T>(&self) -> S
    where
        S: MergeableSummary<T> + Clone,
    {
        merge_in_shard_order(self.shards.iter().cloned())
    }

    /// Consume the sharded structure, merging all shards into one summary
    /// of the full stream (no clones).
    pub fn into_merged<T>(self) -> S
    where
        S: MergeableSummary<T>,
    {
        merge_in_shard_order(self.shards)
    }
}

/// Checkpoint = shard count, round-robin cursor, fan-out threshold, and
/// every shard's own codec in shard order — a restored sharded summary
/// keeps dealing and ingesting bit-identically.
impl<S: SnapshotCodec> SnapshotCodec for ShardedSummary<S> {
    fn save_into(&self, out: &mut Vec<u8>) {
        snapshot::put_usize(out, self.shards.len());
        snapshot::put_usize(out, self.routed);
        snapshot::put_usize(out, self.parallel_threshold);
        for shard in &self.shards {
            shard.save_into(out);
        }
    }

    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("sharded summary with no shards"));
        }
        let routed = r.usize()?;
        let parallel_threshold = r.usize()?;
        let shards = (0..k)
            .map(|_| S::restore_from(r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            routed,
            parallel_threshold,
        })
    }
}

impl<T, S> StreamSummary<T> for ShardedSummary<S>
where
    T: Clone + Sync,
    S: StreamSummary<T> + Send,
{
    fn ingest(&mut self, x: T) {
        let k = self.shards.len();
        self.shards[self.routed % k].ingest(x);
        self.routed += 1;
    }

    fn ingest_batch(&mut self, xs: &[T]) {
        let k = self.shards.len();
        if k == 1 {
            self.shards[0].ingest_batch(xs);
            self.routed += xs.len();
            return;
        }
        // Shard j's stride starts at the first batch index i with
        // (routed + i) % k == j.
        let first = |j: usize| (j + k - self.routed % k) % k;
        if xs.len() >= self.parallel_threshold {
            std::thread::scope(|scope| {
                for (j, shard) in self.shards.iter_mut().enumerate() {
                    let start = first(j);
                    scope.spawn(move || {
                        let mine: Vec<T> = xs.iter().skip(start).step_by(k).cloned().collect();
                        shard.ingest_batch(&mine);
                    });
                }
            });
        } else {
            for (j, shard) in self.shards.iter_mut().enumerate() {
                let mine: Vec<T> = xs.iter().skip(first(j)).step_by(k).cloned().collect();
                shard.ingest_batch(&mine);
            }
        }
        self.routed += xs.len();
    }

    fn items_seen(&self) -> usize {
        self.shards.iter().map(S::items_seen).sum()
    }

    fn space(&self) -> usize {
        self.shards.iter().map(S::space).sum()
    }

    fn summary_name(&self) -> &'static str {
        self.shards[0].summary_name()
    }
}

/// Quantile queries answer from the on-demand merge of all shards.
impl<T, S> QuantileSummary<T> for ShardedSummary<S>
where
    T: Clone + Sync,
    S: QuantileSummary<T> + MergeableSummary<T> + Clone + Send,
{
    fn estimate_quantile(&self, q: f64) -> Option<T> {
        self.merged().estimate_quantile(q)
    }

    fn estimate_rank(&self, x: &T) -> f64 {
        self.merged().estimate_rank(x)
    }
}

/// Frequency queries answer from the on-demand merge of all shards.
impl<T, S> FrequencySummary<T> for ShardedSummary<S>
where
    T: Clone + Sync,
    S: FrequencySummary<T> + MergeableSummary<T> + Clone + Send,
{
    fn estimate_count(&self, x: &T) -> f64 {
        self.merged().estimate_count(x)
    }

    fn heavy_items(&self, threshold: f64) -> Vec<(T, f64)> {
        self.merged().heavy_items(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{ReservoirSampler, StreamSampler};

    fn sharded_reservoir(k: usize) -> ShardedSummary<ReservoirSampler<u64>> {
        ShardedSummary::new(k, 42, |_, seed| ReservoirSampler::with_seed(64, seed))
    }

    #[test]
    fn batch_and_elementwise_ingest_are_state_identical() {
        let stream: Vec<u64> = (0..50_000).collect();
        let mut a = sharded_reservoir(4).with_parallel_threshold(usize::MAX);
        let mut b = sharded_reservoir(4); // parallel path
        for &x in &stream {
            a.ingest(x);
        }
        b.ingest_batch(&stream);
        for (sa, sb) in a.shards().iter().zip(b.shards()) {
            assert_eq!(sa.sample(), sb.sample());
            assert_eq!(sa.observed(), sb.observed());
        }
        assert_eq!(a.items_seen(), 50_000);
        assert_eq!(b.items_seen(), 50_000);
    }

    #[test]
    fn batch_split_points_do_not_matter() {
        let stream: Vec<u64> = (0..30_000).rev().collect();
        let mut whole = sharded_reservoir(3);
        whole.ingest_batch(&stream);
        let mut pieces = sharded_reservoir(3).with_parallel_threshold(usize::MAX);
        let mut rest: &[u64] = &stream;
        let mut chunk = 1usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            pieces.ingest_batch(&rest[..take]);
            rest = &rest[take..];
            chunk = chunk * 2 + 1;
        }
        for (a, b) in whole.shards().iter().zip(pieces.shards()) {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..8)
            .map(|j| ShardedSummary::<()>::shard_seed(7, j))
            .collect();
        let again: Vec<u64> = (0..8)
            .map(|j| ShardedSummary::<()>::shard_seed(7, j))
            .collect();
        assert_eq!(seeds, again);
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn ingest_source_matches_ingest_batch() {
        use robust_sampling_streamgen::{SliceSource, UniformSource};
        let stream = robust_sampling_streamgen::uniform(60_000, 1 << 30, 3);
        let mut whole = sharded_reservoir(4);
        whole.ingest_batch(&stream);
        // Frame-pulled from a slice, at an awkward frame size.
        let mut framed = sharded_reservoir(4);
        let total = framed.ingest_source(&mut SliceSource::new(&stream), 777);
        assert_eq!(total, stream.len());
        for (a, b) in whole.shards().iter().zip(framed.shards()) {
            assert_eq!(a.sample(), b.sample());
        }
        // Frame-pulled straight from the generator, never materialized.
        let mut lazy = sharded_reservoir(4);
        lazy.ingest_source(&mut UniformSource::new(60_000, 1 << 30, 3), 1 << 14);
        for (a, b) in whole.shards().iter().zip(lazy.shards()) {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn sharded_snapshot_resumes_bit_identically() {
        let stream: Vec<u64> = (0..40_000).collect();
        let mut whole = sharded_reservoir(4);
        let mut half = sharded_reservoir(4);
        whole.ingest_batch(&stream);
        half.ingest_batch(&stream[..17_001]);
        let mut resumed = ShardedSummary::<ReservoirSampler<u64>>::restore(&half.save()).unwrap();
        resumed.ingest_batch(&stream[17_001..]);
        for (a, b) in whole.shards().iter().zip(resumed.shards()) {
            assert_eq!(a.sample(), b.sample());
        }
        assert_eq!(resumed.items_seen(), whole.items_seen());
    }

    #[test]
    fn merged_reservoir_covers_the_whole_stream() {
        let stream: Vec<u64> = (0..100_000).collect();
        let mut s = ShardedSummary::new(4, 9, |_, seed| ReservoirSampler::with_seed(256, seed));
        s.ingest_batch(&stream);
        let merged = s.merged();
        assert_eq!(merged.observed(), 100_000);
        assert_eq!(merged.sample().len(), 256);
        let d = crate::approx::prefix_discrepancy(&stream, merged.sample()).value;
        assert!(d < 0.12, "merged discrepancy {d}");
        // `merged` clones: the sharded structure can keep ingesting.
        s.ingest_batch(&stream);
        assert_eq!(s.items_seen(), 200_000);
    }

    #[test]
    fn into_merged_consumes_without_cloning() {
        let stream: Vec<u64> = (0..10_000).collect();
        let mut s = sharded_reservoir(2);
        s.ingest_batch(&stream);
        let merged = s.into_merged();
        assert_eq!(merged.observed(), 10_000);
    }

    #[test]
    fn single_shard_is_the_plain_summary() {
        let stream: Vec<u64> = (0..5_000).collect();
        let mut sharded = ShardedSummary::new(1, 3, |_, _| ReservoirSampler::with_seed(32, 99));
        let mut plain = ReservoirSampler::with_seed(32, 99);
        sharded.ingest_batch(&stream);
        plain.ingest_batch(&stream);
        assert_eq!(sharded.shards()[0].sample(), plain.sample());
    }
}
