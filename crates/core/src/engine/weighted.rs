//! The [`WeightedSummary`] capability: multiplicity-weighted ingestion.
//!
//! A weighted summary ingests `(item, weight)` pairs under a strict
//! **multiplicity contract**: `s.ingest_weighted(x, w)` must leave the
//! summary in exactly the state that `for _ in 0..w { s.ingest(x) }`
//! would — same retained elements, same counters, same RNG stream. That
//! pins three properties at once:
//!
//! * weight 1 *is* the unit kernel, so every equivalence law already
//!   proven for the unit path (batch ≡ element-wise, snapshot-resume ≡
//!   uninterrupted, shard-merge determinism) transfers verbatim;
//! * the paper's robustness guarantees apply unchanged — a weighted
//!   stream is just a run-length-encoded unit stream, and Theorem 1.2
//!   sizes the summary by the *expanded* length `n = Σ wᵢ`;
//! * weighted and unit traffic can be mixed freely on one summary (the
//!   tenant serving path does exactly this).
//!
//! The samplers implement the contract with their existing skip-sampling
//! arithmetic jumped across the virtually expanded stream — a weight-`w`
//! item spans `w` virtual positions — so a heavy item costs `O(stores)`
//! RNG work, not `O(w)`. The deterministic baseline sketches add `w` to
//! counters where that is exactly the repeated update (Count-Min), and
//! use the standard weighted update where the classical algorithm is
//! defined on weights (Misra–Gries, SpaceSaving; weight 1 still reduces
//! to the unit step).

use crate::sampler::{BernoulliSampler, ReservoirSampler};
use crate::sketch::RobustHeavyHitterSketch;

use super::summary::StreamSummary;

/// A summary that ingests weighted items under the multiplicity contract
/// (see the module docs): `ingest_weighted(x, w)` ≡ `w` repeats of
/// `ingest(x)`, state-for-state where the implementation notes no caveat.
pub trait WeightedSummary<T>: StreamSummary<T> {
    /// Process one item carrying an integer weight (multiplicity).
    /// Weight 0 is a no-op that consumes no randomness.
    fn ingest_weighted(&mut self, x: T, weight: u64);

    /// Process a batch of weighted items. Equivalent, state-for-state, to
    /// ingesting each pair in order; implementations with a sublinear
    /// bulk path override this.
    fn ingest_weighted_batch(&mut self, xs: &[(T, u64)])
    where
        T: Clone,
    {
        for (x, w) in xs {
            self.ingest_weighted(x.clone(), *w);
        }
    }
}

impl<T: Clone> WeightedSummary<T> for BernoulliSampler<T> {
    fn ingest_weighted(&mut self, x: T, weight: u64) {
        let _ = self.observe_weighted(x, weight);
    }

    fn ingest_weighted_batch(&mut self, xs: &[(T, u64)]) {
        self.observe_weighted_batch(xs);
    }
}

impl<T: Clone> WeightedSummary<T> for ReservoirSampler<T> {
    fn ingest_weighted(&mut self, x: T, weight: u64) {
        let _ = self.observe_weighted(x, weight);
    }

    fn ingest_weighted_batch(&mut self, xs: &[(T, u64)]) {
        self.observe_weighted_batch(xs);
    }
}

/// The Corollary 1.6 sampling pipeline inherits the multiplicity
/// contract from its inner reservoir: the robust sketch's only stream
/// state is the sample plus exact counters, both of which commute with
/// run-length expansion.
impl WeightedSummary<u64> for RobustHeavyHitterSketch<u64> {
    fn ingest_weighted(&mut self, x: u64, weight: u64) {
        for _ in 0..weight {
            self.observe(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::StreamSampler;

    #[test]
    fn trait_object_weighted_ingest_matches_expanded() {
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i, i % 4)).collect();
        let mut weighted = ReservoirSampler::with_seed(12, 5);
        {
            let dyn_s: &mut dyn WeightedSummary<u64> = &mut weighted;
            dyn_s.ingest_weighted_batch(&pairs);
        }
        let mut expanded = ReservoirSampler::with_seed(12, 5);
        for &(x, w) in &pairs {
            for _ in 0..w {
                expanded.ingest(x);
            }
        }
        assert_eq!(weighted.sample(), expanded.sample());
        assert_eq!(weighted.items_seen(), expanded.items_seen());
    }

    #[test]
    fn weight_zero_is_a_no_op() {
        let mut a = BernoulliSampler::<u64>::with_seed(0.5, 1);
        let b = a.clone();
        a.ingest_weighted(99, 0);
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.items_seen(), b.items_seen());
    }
}
