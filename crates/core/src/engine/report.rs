//! The single reporting path for experiment results: an aligned text
//! table that can also serialise itself as CSV.
//!
//! Every experiment binary accumulates its rows in a [`Table`] and emits
//! it through [`Table::emit`], which prints the aligned table and — when
//! the `ROBUST_SAMPLING_CSV_DIR` environment variable is set (the
//! `--csv` flag of the E-binaries sets it for child code) — also writes
//! `<dir>/<experiment>_<section>.csv`. One code path, two sinks.

use std::io::Write;
use std::path::PathBuf;

/// Environment variable naming the directory CSV traces are written to.
pub const CSV_DIR_ENV: &str = "ROBUST_SAMPLING_CSV_DIR";

/// A fixed-width text table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("  {}", body.join("  ").trim_end());
        };
        line(&self.header);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&rule);
        for row in &self.rows {
            line(row);
        }
    }

    /// Serialise as CSV (header + rows, RFC-4180 quoting where needed).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for line in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&line.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print the table; additionally write it as
    /// `$ROBUST_SAMPLING_CSV_DIR/<experiment>_<section>.csv` when the
    /// environment variable is set. Failures to write the trace are
    /// reported on stderr but never fail the experiment.
    pub fn emit(&self, experiment: &str, section: &str) {
        self.print();
        let Ok(dir) = std::env::var(CSV_DIR_ENV) else {
            return;
        };
        let path = PathBuf::from(dir).join(format!("{experiment}_{section}.csv"));
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let mut f = std::fs::File::create(&path)?;
            f.write_all(self.to_csv().as_bytes())
        };
        match write() {
            Ok(()) => eprintln!("[trace] wrote {}", path.display()),
            Err(e) => eprintln!("[trace] could not write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn emit_writes_csv_when_env_set() {
        let dir = std::env::temp_dir().join("robust_sampling_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Note: set_var is fine here; tests in this module are the only
        // readers and run in one process.
        std::env::set_var(CSV_DIR_ENV, &dir);
        let mut t = Table::new(&["x"]);
        t.row(&["1".into()]);
        t.emit("e0", "demo");
        std::env::remove_var(CSV_DIR_ENV);
        let written = std::fs::read_to_string(dir.join("e0_demo.csv")).expect("csv written");
        assert_eq!(written, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
