//! The batched stream-summary engine.
//!
//! This layer unifies everything in the workspace that consumes a stream
//! — the samplers of [`crate::sampler`], the self-sizing robust sketches
//! of [`crate::sketch`], the sliding-window sampler of [`crate::window`],
//! and (via impls in their own crates) the baseline sketches and the
//! distributed sites — behind one [`StreamSummary`] interface with a
//! batched ingestion hot path:
//!
//! * [`StreamSummary`] — `ingest` / `ingest_batch` / introspection. The
//!   default `ingest_batch` loops over `ingest`; summaries with a faster
//!   bulk path override it. [`crate::sampler::BernoulliSampler`]
//!   (geometric skip-sampling) and [`crate::sampler::ReservoirSampler`]
//!   (Algorithm L gap skipping) do `O(stored)` instead of `Θ(n)` work per
//!   batch — and produce **identical samples** to element-wise ingestion
//!   for identical seeds, so the batch path is a pure optimization.
//! * [`QuantileSummary`] / [`FrequencySummary`] — the `estimate`-style
//!   query capabilities, so experiments can compare a robust sample, GK,
//!   KLL, Misra–Gries, … through one interface.
//! * [`ExperimentEngine`] — the one game/measurement loop shared by every
//!   experiment binary: adaptive duels, continuous (every-prefix) games,
//!   and static batched runs, each judged against a
//!   [`SetSystem`](crate::set_system::SetSystem) across seeded trials.
//! * [`report`] — the single table/CSV reporting path experiments emit
//!   their rows through.

pub mod experiment;
pub mod report;
pub mod summary;

pub use experiment::{ExperimentEngine, RunStats};
pub use summary::{FrequencySummary, QuantileSummary, StreamSummary};
