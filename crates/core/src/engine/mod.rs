//! The batched stream-summary engine.
//!
//! This layer unifies everything in the workspace that consumes a stream
//! — the samplers of [`crate::sampler`], the self-sizing robust sketches
//! of [`crate::sketch`], the sliding-window sampler of [`crate::window`],
//! and (via impls in their own crates) the baseline sketches and the
//! distributed sites — behind one [`StreamSummary`] interface with a
//! batched ingestion hot path:
//!
//! * [`StreamSummary`] — `ingest` / `ingest_batch` / introspection. The
//!   default `ingest_batch` loops over `ingest`; summaries with a faster
//!   bulk path override it. [`crate::sampler::BernoulliSampler`]
//!   (geometric skip-sampling) and [`crate::sampler::ReservoirSampler`]
//!   (Algorithm L gap skipping) do `O(stored)` instead of `Θ(n)` work per
//!   batch — and produce **identical samples** to element-wise ingestion
//!   for identical seeds, so the batch path is a pure optimization.
//! * [`QuantileSummary`] / [`FrequencySummary`] — the `estimate`-style
//!   query capabilities, so experiments can compare a robust sample, GK,
//!   KLL, Misra–Gries, … through one interface.
//! * [`WeightedSummary`] — multiplicity-weighted ingestion:
//!   `ingest_weighted(x, w)` is state-for-state the same as `w` repeats
//!   of `ingest(x)`, implemented on the samplers by jumping the existing
//!   skip arithmetic across the virtually expanded stream, so weight-1
//!   traffic stays bit-identical to the unit kernels.
//! * [`MergeableSummary`] — the composition capability: summaries whose
//!   guarantees survive merging, which is what sharding a stream across
//!   cores or sites and reassembling the pieces requires.
//! * [`ShardedSummary`] — data-parallel ingestion built on the two:
//!   round-robin routing to `K` deterministically-seeded shards, batched
//!   fan-out across scoped threads, queries merged on demand.
//! * [`SnapshotCodec`] — the persistence capability: summaries that can
//!   checkpoint their **full** state (retained elements *and* private RNG
//!   / gap state) and resume with behaviour bit-identical to an
//!   uninterrupted run — what the long-running serving layer in the
//!   `service` crate builds checkpoint/restore on.
//! * [`ExperimentEngine`] — the one game/measurement loop shared by every
//!   experiment binary: adaptive duels, continuous (every-prefix) games,
//!   and static batched runs, each judged against a
//!   [`SetSystem`](crate::set_system::SetSystem) across seeded trials —
//!   with the independent seeded trials optionally fanned across a scoped
//!   thread pool ([`ExperimentEngine::threads`]), bit-identical to the
//!   sequential run.
//! * [`report`] — the single table/CSV reporting path experiments emit
//!   their rows through.

pub mod experiment;
pub mod merge;
pub mod report;
pub mod sharded;
pub mod snapshot;
pub mod summary;
pub mod weighted;

pub use experiment::{ExperimentEngine, RunStats, SOURCE_FRAME};
pub use merge::{merge_in_shard_order, MergeableSummary};
pub use sharded::ShardedSummary;
pub use snapshot::{FrameHwm, SnapshotCodec, SnapshotError, SnapshotReader};
pub use summary::{FrequencySummary, QuantileSummary, StreamSummary};
pub use weighted::WeightedSummary;
