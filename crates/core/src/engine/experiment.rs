//! [`ExperimentEngine`]: the one game/measurement loop behind every
//! experiment binary.
//!
//! Before this layer existed each of the thirteen E-binaries hand-rolled
//! the same skeleton — seed loop, sampler/adversary construction, game
//! run, set-system judgment, aggregation. The engine owns that skeleton:
//! an experiment supplies factories (seed → sampler, seed → adversary,
//! seed → stream) and gets back per-trial records or aggregate
//! [`RunStats`]. Three compositions cover the paper:
//!
//! * [`adaptive`](ExperimentEngine::adaptive) — the Figure 1
//!   `AdaptiveGame` duel, judged at the end of the stream;
//! * [`continuous`](ExperimentEngine::continuous) — the Figure 2
//!   every-prefix game on a checkpoint grid;
//! * [`batch`](ExperimentEngine::batch) — a static (oblivious) workload
//!   driven through [`StreamSummary::ingest_batch`], i.e. the batched
//!   hot path: static streams never pay the per-element game loop.
//!
//! Sampler RNGs are automatically decorrelated from adversary seeds via
//! [`ExperimentEngine::sampler_seed`] — the paper's model requires the
//! sampler's coins to be independent of the adversary, so experiment code
//! must never share a raw seed between them.

use crate::adversary::Adversary;
use crate::engine::summary::StreamSummary;
use crate::game::{
    AdaptiveGame, ContinuousAdaptiveGame, ContinuousOutcome, GameOutcome, RoundTrace,
};
use crate::sampler::StreamSampler;
use crate::set_system::SetSystem;

/// Aggregate of one scalar measurement across an engine run's trials.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The per-trial values, in seed order.
    pub per_trial: Vec<f64>,
}

impl RunStats {
    /// Wrap per-trial values.
    pub fn new(per_trial: Vec<f64>) -> Self {
        Self { per_trial }
    }

    /// Worst (largest) trial value; 0 for an empty run.
    pub fn worst(&self) -> f64 {
        self.per_trial.iter().copied().fold(0.0, f64::max)
    }

    /// Mean trial value; 0 for an empty run.
    pub fn mean(&self) -> f64 {
        if self.per_trial.is_empty() {
            return 0.0;
        }
        self.per_trial.iter().sum::<f64>() / self.per_trial.len() as f64
    }

    /// Whether every trial value is `≤ bound`.
    pub fn all_within(&self, bound: f64) -> bool {
        self.per_trial.iter().all(|&v| v <= bound)
    }

    /// Fraction of trials with value `> bound`.
    pub fn fraction_above(&self, bound: f64) -> f64 {
        if self.per_trial.is_empty() {
            return 0.0;
        }
        self.per_trial.iter().filter(|&&v| v > bound).count() as f64 / self.per_trial.len() as f64
    }
}

/// The shared experiment loop: `trials` seeded games of length `n`.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEngine {
    n: usize,
    trials: usize,
    base_seed: u64,
}

impl ExperimentEngine {
    /// An engine playing `trials` games of `n` rounds, with trial seeds
    /// `0, 1, …` (see [`with_base_seed`](Self::with_base_seed)).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `trials == 0`.
    pub fn new(n: usize, trials: usize) -> Self {
        assert!(n > 0 && trials > 0, "need n > 0 and trials > 0");
        Self {
            n,
            trials,
            base_seed: 0,
        }
    }

    /// Offset the trial seeds, decorrelating repeated sweeps within one
    /// experiment.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Stream length per game.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of trials.
    #[inline]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The trial seeds, in run order.
    pub fn seeds(&self) -> impl Iterator<Item = u64> {
        let base = self.base_seed;
        (0..self.trials as u64).map(move |t| base.wrapping_add(t))
    }

    /// Decorrelate a sampler's coins from the adversary's seed. The
    /// paper's model requires the sampler's randomness to be independent
    /// of the adversary; every engine entry point routes sampler
    /// factories through this map.
    #[inline]
    pub fn sampler_seed(seed: u64) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03
    }

    /// Play the adaptive game once per trial and map each outcome (with
    /// the spent adversary, for strategy-specific introspection like
    /// attack exhaustion) to a record.
    pub fn adaptive_map<T, Smp, Adv, R>(
        &self,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
        mut map: impl FnMut(u64, &Adv, GameOutcome<T>) -> R,
    ) -> Vec<R>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
    {
        self.seeds()
            .map(|seed| {
                let mut sampler = mk_sampler(Self::sampler_seed(seed));
                let mut adv = mk_adv(seed);
                let out = AdaptiveGame::new(self.n).run(&mut sampler, &mut adv);
                map(seed, &adv, out)
            })
            .collect()
    }

    /// Play the adaptive game once per trial; aggregate the set-system
    /// discrepancy of each final sample.
    pub fn adaptive<T, Smp, Adv, Sys>(
        &self,
        system: &Sys,
        mk_sampler: impl FnMut(u64) -> Smp,
        mk_adv: impl FnMut(u64) -> Adv,
    ) -> RunStats
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
        Sys: SetSystem<T>,
    {
        RunStats::new(
            self.adaptive_map(mk_sampler, mk_adv, |_, _, out: GameOutcome<T>| {
                out.discrepancy(system).value
            }),
        )
    }

    /// Play the adaptive game once per trial, streaming every round to
    /// `on_round` (the martingale experiments' hook) and returning the
    /// outcomes.
    pub fn adaptive_traced<T, Smp, Adv>(
        &self,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
        mut on_round: impl FnMut(u64, &RoundTrace<'_, T>),
    ) -> Vec<GameOutcome<T>>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
    {
        self.seeds()
            .map(|seed| {
                let mut sampler = mk_sampler(Self::sampler_seed(seed));
                let mut adv = mk_adv(seed);
                AdaptiveGame::new(self.n)
                    .run_traced(&mut sampler, &mut adv, |tr| on_round(seed, &tr))
            })
            .collect()
    }

    /// Play the continuous (every-prefix) game once per trial on the
    /// given checkpoint grid.
    pub fn continuous<T, Smp, Adv, Sys>(
        &self,
        game: &ContinuousAdaptiveGame,
        system: &Sys,
        eps: f64,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
    ) -> Vec<ContinuousOutcome<T>>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
        Sys: SetSystem<T>,
    {
        self.seeds()
            .map(|seed| {
                let mut sampler = mk_sampler(Self::sampler_seed(seed));
                let mut adv = mk_adv(seed);
                game.run(&mut sampler, &mut adv, system, eps)
            })
            .collect()
    }

    /// Sup-over-prefixes discrepancy per trial of the continuous game.
    pub fn continuous_sup<T, Smp, Adv, Sys>(
        &self,
        game: &ContinuousAdaptiveGame,
        system: &Sys,
        eps: f64,
        mk_sampler: impl FnMut(u64) -> Smp,
        mk_adv: impl FnMut(u64) -> Adv,
    ) -> RunStats
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
        Sys: SetSystem<T>,
    {
        RunStats::new(
            self.continuous(game, system, eps, mk_sampler, mk_adv)
                .into_iter()
                .map(|o| o.max_prefix_discrepancy)
                .collect(),
        )
    }

    /// Drive a static (oblivious) workload through the batched hot path
    /// once per trial and map `(seed, stream, summary)` to a record.
    ///
    /// This is the engine's static-adversary fast lane: a fixed stream
    /// needs no per-round adversary interaction, so the summary ingests
    /// it via [`StreamSummary::ingest_batch`].
    pub fn batch_map<T, S, R>(
        &self,
        mut mk_summary: impl FnMut(u64) -> S,
        mut mk_stream: impl FnMut(u64) -> Vec<T>,
        mut map: impl FnMut(u64, &[T], &S) -> R,
    ) -> Vec<R>
    where
        T: Clone,
        S: StreamSummary<T>,
    {
        self.seeds()
            .map(|seed| {
                let stream = mk_stream(seed);
                let mut summary = mk_summary(Self::sampler_seed(seed));
                summary.ingest_batch(&stream);
                map(seed, &stream, &summary)
            })
            .collect()
    }

    /// Static workload through the batched hot path, judged against a
    /// set system via an extractor from summary to retained sample.
    pub fn batch<T, S, Sys>(
        &self,
        system: &Sys,
        mk_summary: impl FnMut(u64) -> S,
        mk_stream: impl FnMut(u64) -> Vec<T>,
        mut sample_of: impl FnMut(&S) -> Vec<T>,
    ) -> RunStats
    where
        T: Clone,
        S: StreamSummary<T>,
        Sys: SetSystem<T>,
    {
        RunStats::new(self.batch_map(mk_summary, mk_stream, |_, stream, summary| {
            system.max_discrepancy(stream, &sample_of(summary)).value
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{QuantileHunterAdversary, RandomAdversary, StaticAdversary};
    use crate::bounds;
    use crate::sampler::{ReservoirSampler, StreamSampler};
    use crate::set_system::{PrefixSystem, SetSystem};

    #[test]
    fn adaptive_runs_all_trials_and_is_deterministic() {
        let engine = ExperimentEngine::new(2_000, 5);
        let system = PrefixSystem::new(1 << 16);
        let run = |e: &ExperimentEngine| {
            e.adaptive(
                &system,
                |s| ReservoirSampler::with_seed(32, s),
                |s| RandomAdversary::new(1 << 16, s),
            )
        };
        let a = run(&engine);
        let b = run(&engine);
        assert_eq!(a.per_trial.len(), 5);
        assert_eq!(a.per_trial, b.per_trial);
        assert!(a.worst() >= a.mean());
    }

    #[test]
    fn theorem_sized_reservoir_survives_hunter_through_engine() {
        let system = PrefixSystem::new(1 << 20);
        let k = bounds::reservoir_k_robust(system.ln_cardinality(), 0.15, 0.05);
        let stats = ExperimentEngine::new(4_000, 3).adaptive(
            &system,
            |s| ReservoirSampler::with_seed(k, s),
            |s| QuantileHunterAdversary::new(1 << 20, s),
        );
        assert!(stats.all_within(0.15), "worst {}", stats.worst());
    }

    #[test]
    fn batch_path_equals_adaptive_path_on_static_streams() {
        // The same static stream judged through the per-element game and
        // through the batched fast lane must produce identical samples:
        // ingest_batch is a pure optimization.
        let stream: Vec<u64> = (0..3_000).map(|i| i * 17 % 4096).collect();
        let engine = ExperimentEngine::new(3_000, 3);
        let system = PrefixSystem::new(4096);
        let via_game: Vec<Vec<u64>> = engine.adaptive_map(
            |s| ReservoirSampler::with_seed(50, s),
            |_| StaticAdversary::new(stream.clone()),
            |_, _, out| out.sample,
        );
        let via_batch: Vec<Vec<u64>> = engine.batch_map(
            |s| ReservoirSampler::with_seed(50, s),
            |_| stream.clone(),
            |_, _, summary| summary.sample().to_vec(),
        );
        assert_eq!(via_game, via_batch);
        let stats = engine.batch(
            &system,
            |s| ReservoirSampler::with_seed(50, s),
            |_| stream.clone(),
            |s| s.sample().to_vec(),
        );
        assert_eq!(stats.per_trial.len(), 3);
    }

    #[test]
    fn traced_runs_observe_every_round() {
        let engine = ExperimentEngine::new(100, 2);
        let mut rounds = 0usize;
        let outs = engine.adaptive_traced(
            |s| ReservoirSampler::with_seed(4, s),
            |s| RandomAdversary::new(1 << 10, s),
            |_, _| rounds += 1,
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(rounds, 200);
    }

    #[test]
    fn continuous_grid_judges_prefixes() {
        use crate::game::ContinuousAdaptiveGame;
        let system = PrefixSystem::new(1 << 16);
        let game = ContinuousAdaptiveGame::geometric(1_000, 100, 0.2);
        let stats = ExperimentEngine::new(1_000, 2).continuous_sup(
            &game,
            &system,
            0.2,
            |s| ReservoirSampler::with_seed(1_000, s),
            |s| RandomAdversary::new(1 << 16, s),
        );
        // k = n: the reservoir is the stream, so every prefix is exact.
        assert!(stats.worst() < 1e-9);
    }

    #[test]
    fn run_stats_aggregations() {
        let s = RunStats::new(vec![0.1, 0.3, 0.2]);
        assert!((s.worst() - 0.3).abs() < 1e-12);
        assert!((s.mean() - 0.2).abs() < 1e-12);
        assert!(s.all_within(0.3));
        assert!(!s.all_within(0.25));
        assert!((s.fraction_above(0.15) - 2.0 / 3.0).abs() < 1e-12);
    }
}
