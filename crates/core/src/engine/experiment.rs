//! [`ExperimentEngine`]: the one game/measurement loop behind every
//! experiment binary.
//!
//! Before this layer existed each of the thirteen E-binaries hand-rolled
//! the same skeleton — seed loop, sampler/adversary construction, game
//! run, set-system judgment, aggregation. The engine owns that skeleton:
//! an experiment supplies factories (seed → sampler, seed → adversary,
//! seed → stream) and gets back per-trial records or aggregate
//! [`RunStats`]. Three compositions cover the paper:
//!
//! * [`adaptive`](ExperimentEngine::adaptive) — the Figure 1
//!   `AdaptiveGame` duel, judged at the end of the stream;
//! * [`continuous`](ExperimentEngine::continuous) — the Figure 2
//!   every-prefix game on a checkpoint grid;
//! * [`batch`](ExperimentEngine::batch) — a static (oblivious) workload
//!   driven through [`StreamSummary::ingest_batch`], i.e. the batched
//!   hot path: static streams never pay the per-element game loop.
//!
//! Sampler RNGs are automatically decorrelated from adversary seeds via
//! [`ExperimentEngine::sampler_seed`] — the paper's model requires the
//! sampler's coins to be independent of the adversary, so experiment code
//! must never share a raw seed between them.
//!
//! Because every trial owns all of its state, the trial loop is
//! embarrassingly parallel: [`ExperimentEngine::threads`] fans trials
//! across a scoped thread pool and reassembles results in seed order,
//! **bit-identical** to the sequential run (same factory call order, same
//! per-seed RNG streams, same aggregation order).

use crate::adversary::Adversary;
use crate::engine::summary::StreamSummary;
use crate::game::{
    AdaptiveGame, ContinuousAdaptiveGame, ContinuousOutcome, GameOutcome, RoundTrace,
};
use crate::sampler::StreamSampler;
use crate::set_system::SetSystem;
use robust_sampling_streamgen::source::{for_each_chunk, StreamSource, DEFAULT_FRAME};

/// Frame size (elements) the engine pulls per [`StreamSource`] chunk on
/// the source-driven trial paths: per-trial memory is one frame plus the
/// summary, never the stream.
pub const SOURCE_FRAME: usize = DEFAULT_FRAME;

/// Drain a source into a summary in [`SOURCE_FRAME`]-sized frames through
/// the batched hot path, reusing one buffer.
fn drain_source<T: Clone, S: StreamSummary<T>>(summary: &mut S, source: &mut impl StreamSource<T>) {
    for_each_chunk(source, SOURCE_FRAME, |chunk| summary.ingest_batch(chunk));
}

/// Aggregate of one scalar measurement across an engine run's trials.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The per-trial values, in seed order.
    pub per_trial: Vec<f64>,
}

impl RunStats {
    /// Wrap per-trial values.
    pub fn new(per_trial: Vec<f64>) -> Self {
        Self { per_trial }
    }

    /// Worst (largest) trial value; 0 for an empty run.
    pub fn worst(&self) -> f64 {
        self.per_trial.iter().copied().fold(0.0, f64::max)
    }

    /// Mean trial value; 0 for an empty run.
    pub fn mean(&self) -> f64 {
        if self.per_trial.is_empty() {
            return 0.0;
        }
        self.per_trial.iter().sum::<f64>() / self.per_trial.len() as f64
    }

    /// Whether every trial value is `≤ bound`.
    pub fn all_within(&self, bound: f64) -> bool {
        self.per_trial.iter().all(|&v| v <= bound)
    }

    /// Fraction of trials with value `> bound`.
    pub fn fraction_above(&self, bound: f64) -> f64 {
        if self.per_trial.is_empty() {
            return 0.0;
        }
        self.per_trial.iter().filter(|&&v| v > bound).count() as f64 / self.per_trial.len() as f64
    }
}

/// The shared experiment loop: `trials` seeded games of length `n`.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEngine {
    n: usize,
    trials: usize,
    base_seed: u64,
    threads: usize,
}

impl ExperimentEngine {
    /// An engine playing `trials` games of `n` rounds, with trial seeds
    /// `0, 1, …` (see [`with_base_seed`](Self::with_base_seed)).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `trials == 0`.
    pub fn new(n: usize, trials: usize) -> Self {
        assert!(n > 0 && trials > 0, "need n > 0 and trials > 0");
        Self {
            n,
            trials,
            base_seed: 0,
            threads: 1,
        }
    }

    /// Offset the trial seeds, decorrelating repeated sweeps within one
    /// experiment.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Fan the seeded trials across up to `threads` scoped worker threads.
    ///
    /// Trials are already independent — every trial owns its sampler,
    /// adversary, and RNGs, all derived from its seed — so the engine
    /// constructs them on the calling thread in seed order (factories stay
    /// `FnMut`), ships them to workers in contiguous chunks, and
    /// reassembles the results in seed order. The output is
    /// **bit-identical** to the sequential run; `threads(1)` *is* the
    /// sequential run. [`adaptive_traced`](Self::adaptive_traced) is the
    /// one exception: its per-round callback imposes a global order, so it
    /// always runs sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// The configured worker-thread count.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Run one prepared input per trial through `run`, on up to
    /// [`threads`](Self::threads) scoped workers, returning outputs in
    /// input (= seed) order. The sequential path is the plain iterator
    /// map; the parallel path chunks inputs contiguously, one worker per
    /// chunk, and concatenates the chunk outputs — same order, same
    /// values, since `run` is pure modulo its input's own RNG state.
    fn run_trials<In, Out>(&self, inputs: Vec<In>, run: impl Fn(In) -> Out + Sync) -> Vec<Out>
    where
        In: Send,
        Out: Send,
    {
        let threads = self.threads.min(inputs.len()).max(1);
        if threads == 1 {
            return inputs.into_iter().map(run).collect();
        }
        let per_chunk = inputs.len().div_ceil(threads);
        let mut chunks: Vec<Vec<In>> = Vec::with_capacity(threads);
        let mut it = inputs.into_iter();
        loop {
            let chunk: Vec<In> = it.by_ref().take(per_chunk).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let run = &run;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(run).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("trial worker panicked"))
                .collect()
        })
    }

    /// Stream length per game.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of trials.
    #[inline]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The trial seeds, in run order.
    pub fn seeds(&self) -> impl Iterator<Item = u64> {
        let base = self.base_seed;
        (0..self.trials as u64).map(move |t| base.wrapping_add(t))
    }

    /// Decorrelate a sampler's coins from the adversary's seed. The
    /// paper's model requires the sampler's randomness to be independent
    /// of the adversary; every engine entry point routes sampler
    /// factories through this map.
    #[inline]
    pub fn sampler_seed(seed: u64) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03
    }

    /// Construct `(seed, sampler, adversary)` per trial, on the calling
    /// thread, in seed order — the factory call order every execution
    /// mode shares, which is what makes parallel runs bit-identical.
    fn duelists<T, Smp, Adv>(
        &self,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
    ) -> Vec<(u64, Smp, Adv)>
    where
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
    {
        self.seeds()
            .map(|seed| (seed, mk_sampler(Self::sampler_seed(seed)), mk_adv(seed)))
            .collect()
    }

    /// Play the adaptive game once per trial and map each outcome (with
    /// the spent adversary, for strategy-specific introspection like
    /// attack exhaustion) to a record.
    ///
    /// Games run on the configured thread pool; `map` runs on the calling
    /// thread, in seed order (it may stay `FnMut`). The sequential engine
    /// streams — one trial's state alive at a time; a parallel engine
    /// buffers all trials' outcomes before the map pass.
    pub fn adaptive_map<T, Smp, Adv, R>(
        &self,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
        mut map: impl FnMut(u64, &Adv, GameOutcome<T>) -> R,
    ) -> Vec<R>
    where
        T: Clone + Send,
        Smp: StreamSampler<T> + Send,
        Adv: Adversary<T> + Send,
    {
        let n = self.n;
        if self.threads == 1 {
            return self
                .seeds()
                .map(|seed| {
                    let mut sampler = mk_sampler(Self::sampler_seed(seed));
                    let mut adv = mk_adv(seed);
                    let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
                    map(seed, &adv, out)
                })
                .collect();
        }
        self.run_trials(
            self.duelists(mk_sampler, mk_adv),
            move |(seed, mut sampler, mut adv)| {
                let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
                (seed, adv, out)
            },
        )
        .into_iter()
        .map(|(seed, adv, out)| map(seed, &adv, out))
        .collect()
    }

    /// Play the adaptive game once per trial; aggregate the set-system
    /// discrepancy of each final sample. Both the games and the judgments
    /// run on the configured thread pool.
    pub fn adaptive<T, Smp, Adv, Sys>(
        &self,
        system: &Sys,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
    ) -> RunStats
    where
        T: Clone + Send,
        Smp: StreamSampler<T> + Send,
        Adv: Adversary<T> + Send,
        Sys: SetSystem<T> + Sync,
    {
        let n = self.n;
        if self.threads == 1 {
            return RunStats::new(
                self.seeds()
                    .map(|seed| {
                        let mut sampler = mk_sampler(Self::sampler_seed(seed));
                        let mut adv = mk_adv(seed);
                        AdaptiveGame::new(n)
                            .run(&mut sampler, &mut adv)
                            .discrepancy(system)
                            .value
                    })
                    .collect(),
            );
        }
        RunStats::new(self.run_trials(
            self.duelists(mk_sampler, mk_adv),
            move |(_, mut sampler, mut adv)| {
                AdaptiveGame::new(n)
                    .run(&mut sampler, &mut adv)
                    .discrepancy(system)
                    .value
            },
        ))
    }

    /// Play the adaptive game once per trial, streaming every round to
    /// `on_round` (the martingale experiments' hook) and returning the
    /// outcomes.
    ///
    /// Always sequential, even with [`threads`](Self::threads) > 1: the
    /// per-round callback observes a global round order that a parallel
    /// run could not reproduce.
    pub fn adaptive_traced<T, Smp, Adv>(
        &self,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
        mut on_round: impl FnMut(u64, &RoundTrace<'_, T>),
    ) -> Vec<GameOutcome<T>>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T>,
    {
        self.seeds()
            .map(|seed| {
                let mut sampler = mk_sampler(Self::sampler_seed(seed));
                let mut adv = mk_adv(seed);
                AdaptiveGame::new(self.n)
                    .run_traced(&mut sampler, &mut adv, |tr| on_round(seed, &tr))
            })
            .collect()
    }

    /// Play the continuous (every-prefix) game once per trial on the
    /// given checkpoint grid. Games (including their per-checkpoint
    /// judgments) run on the configured thread pool.
    pub fn continuous<T, Smp, Adv, Sys>(
        &self,
        game: &ContinuousAdaptiveGame,
        system: &Sys,
        eps: f64,
        mut mk_sampler: impl FnMut(u64) -> Smp,
        mut mk_adv: impl FnMut(u64) -> Adv,
    ) -> Vec<ContinuousOutcome<T>>
    where
        T: Clone + Send,
        Smp: StreamSampler<T> + Send,
        Adv: Adversary<T> + Send,
        Sys: SetSystem<T> + Sync,
    {
        if self.threads == 1 {
            return self
                .seeds()
                .map(|seed| {
                    let mut sampler = mk_sampler(Self::sampler_seed(seed));
                    let mut adv = mk_adv(seed);
                    game.run(&mut sampler, &mut adv, system, eps)
                })
                .collect();
        }
        self.run_trials(
            self.duelists(mk_sampler, mk_adv),
            move |(_, mut sampler, mut adv)| game.run(&mut sampler, &mut adv, system, eps),
        )
    }

    /// Sup-over-prefixes discrepancy per trial of the continuous game.
    pub fn continuous_sup<T, Smp, Adv, Sys>(
        &self,
        game: &ContinuousAdaptiveGame,
        system: &Sys,
        eps: f64,
        mk_sampler: impl FnMut(u64) -> Smp,
        mk_adv: impl FnMut(u64) -> Adv,
    ) -> RunStats
    where
        T: Clone + Send,
        Smp: StreamSampler<T> + Send,
        Adv: Adversary<T> + Send,
        Sys: SetSystem<T> + Sync,
    {
        RunStats::new(
            self.continuous(game, system, eps, mk_sampler, mk_adv)
                .into_iter()
                .map(|o| o.max_prefix_discrepancy)
                .collect(),
        )
    }

    /// Drive a static (oblivious) workload through the batched hot path
    /// once per trial and map `(seed, stream, summary)` to a record.
    ///
    /// This is the engine's static-adversary fast lane: a fixed stream
    /// needs no per-round adversary interaction, so the summary ingests
    /// it via [`StreamSummary::ingest_batch`].
    pub fn batch_map<T, S, R>(
        &self,
        mut mk_summary: impl FnMut(u64) -> S,
        mut mk_stream: impl FnMut(u64) -> Vec<T>,
        mut map: impl FnMut(u64, &[T], &S) -> R,
    ) -> Vec<R>
    where
        T: Clone + Send,
        S: StreamSummary<T> + Send,
    {
        if self.threads == 1 {
            return self
                .seeds()
                .map(|seed| {
                    let stream = mk_stream(seed);
                    let mut summary = mk_summary(Self::sampler_seed(seed));
                    summary.ingest_batch(&stream);
                    map(seed, &stream, &summary)
                })
                .collect();
        }
        self.run_trials(
            self.workloads(mk_summary, mk_stream),
            |(seed, stream, mut summary)| {
                summary.ingest_batch(&stream);
                (seed, stream, summary)
            },
        )
        .into_iter()
        .map(|(seed, stream, summary)| map(seed, &stream, &summary))
        .collect()
    }

    /// Drive a lazy [`StreamSource`] workload through the batched hot
    /// path once per trial and map `(seed, summary)` to a record — the
    /// constant-memory sibling of [`batch_map`](Self::batch_map): no
    /// trial ever owns more than one [`SOURCE_FRAME`] of stream, so
    /// 100M+-element runs cost summary + frame, not `Θ(n)` RAM.
    ///
    /// Because sources are deterministic per seed, judgments that need a
    /// second look at the stream (e.g.
    /// [`source_prefix_discrepancy`](crate::approx::source_prefix_discrepancy))
    /// re-open the source inside `map` instead of buffering it.
    pub fn source_map<T, S, Src, R>(
        &self,
        mut mk_summary: impl FnMut(u64) -> S,
        mut mk_source: impl FnMut(u64) -> Src,
        mut map: impl FnMut(u64, &S) -> R,
    ) -> Vec<R>
    where
        T: Clone + Send,
        S: StreamSummary<T> + Send,
        Src: StreamSource<T> + Send,
    {
        if self.threads == 1 {
            return self
                .seeds()
                .map(|seed| {
                    let mut source = mk_source(seed);
                    let mut summary = mk_summary(Self::sampler_seed(seed));
                    drain_source(&mut summary, &mut source);
                    map(seed, &summary)
                })
                .collect();
        }
        let inputs: Vec<(u64, Src, S)> = self
            .seeds()
            .map(|seed| {
                let source = mk_source(seed);
                let summary = mk_summary(Self::sampler_seed(seed));
                (seed, source, summary)
            })
            .collect();
        self.run_trials(inputs, |(seed, mut source, mut summary)| {
            drain_source(&mut summary, &mut source);
            (seed, summary)
        })
        .into_iter()
        .map(|(seed, summary)| map(seed, &summary))
        .collect()
    }

    /// Construct `(seed, stream, summary)` per trial on the calling
    /// thread, in seed order (mirrors [`duelists`](Self::duelists)). Only
    /// the parallel paths use this — it materialises all `trials` streams
    /// at once, where the sequential paths stream one at a time.
    fn workloads<T, S>(
        &self,
        mut mk_summary: impl FnMut(u64) -> S,
        mut mk_stream: impl FnMut(u64) -> Vec<T>,
    ) -> Vec<(u64, Vec<T>, S)>
    where
        S: StreamSummary<T>,
    {
        self.seeds()
            .map(|seed| {
                let stream = mk_stream(seed);
                let summary = mk_summary(Self::sampler_seed(seed));
                (seed, stream, summary)
            })
            .collect()
    }

    /// Static workload through the batched hot path, judged against a
    /// set system via an extractor from summary to retained sample.
    /// Ingestion and judgment both run on the configured thread pool.
    pub fn batch<T, S, Sys>(
        &self,
        system: &Sys,
        mut mk_summary: impl FnMut(u64) -> S,
        mut mk_stream: impl FnMut(u64) -> Vec<T>,
        sample_of: impl Fn(&S) -> Vec<T> + Sync,
    ) -> RunStats
    where
        T: Clone + Send,
        S: StreamSummary<T> + Send,
        Sys: SetSystem<T> + Sync,
    {
        if self.threads == 1 {
            return RunStats::new(
                self.seeds()
                    .map(|seed| {
                        let stream = mk_stream(seed);
                        let mut summary = mk_summary(Self::sampler_seed(seed));
                        summary.ingest_batch(&stream);
                        system.max_discrepancy(&stream, &sample_of(&summary)).value
                    })
                    .collect(),
            );
        }
        RunStats::new(self.run_trials(
            self.workloads(mk_summary, mk_stream),
            |(_, stream, mut summary)| {
                summary.ingest_batch(&stream);
                system.max_discrepancy(&stream, &sample_of(&summary)).value
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{QuantileHunterAdversary, RandomAdversary, StaticAdversary};
    use crate::bounds;
    use crate::sampler::{ReservoirSampler, StreamSampler};
    use crate::set_system::{PrefixSystem, SetSystem};

    #[test]
    fn adaptive_runs_all_trials_and_is_deterministic() {
        let engine = ExperimentEngine::new(2_000, 5);
        let system = PrefixSystem::new(1 << 16);
        let run = |e: &ExperimentEngine| {
            e.adaptive(
                &system,
                |s| ReservoirSampler::with_seed(32, s),
                |s| RandomAdversary::new(1 << 16, s),
            )
        };
        let a = run(&engine);
        let b = run(&engine);
        assert_eq!(a.per_trial.len(), 5);
        assert_eq!(a.per_trial, b.per_trial);
        assert!(a.worst() >= a.mean());
    }

    #[test]
    fn theorem_sized_reservoir_survives_hunter_through_engine() {
        let system = PrefixSystem::new(1 << 20);
        let k = bounds::reservoir_k_robust(system.ln_cardinality(), 0.15, 0.05);
        let stats = ExperimentEngine::new(4_000, 3).adaptive(
            &system,
            |s| ReservoirSampler::with_seed(k, s),
            |s| QuantileHunterAdversary::new(1 << 20, s),
        );
        assert!(stats.all_within(0.15), "worst {}", stats.worst());
    }

    #[test]
    fn batch_path_equals_adaptive_path_on_static_streams() {
        // The same static stream judged through the per-element game and
        // through the batched fast lane must produce identical samples:
        // ingest_batch is a pure optimization.
        let stream: Vec<u64> = (0..3_000).map(|i| i * 17 % 4096).collect();
        let engine = ExperimentEngine::new(3_000, 3);
        let system = PrefixSystem::new(4096);
        let via_game: Vec<Vec<u64>> = engine.adaptive_map(
            |s| ReservoirSampler::with_seed(50, s),
            |_| StaticAdversary::new(stream.clone()),
            |_, _, out| out.sample,
        );
        let via_batch: Vec<Vec<u64>> = engine.batch_map(
            |s| ReservoirSampler::with_seed(50, s),
            |_| stream.clone(),
            |_, _, summary| summary.sample().to_vec(),
        );
        assert_eq!(via_game, via_batch);
        let stats = engine.batch(
            &system,
            |s| ReservoirSampler::with_seed(50, s),
            |_| stream.clone(),
            |s| s.sample().to_vec(),
        );
        assert_eq!(stats.per_trial.len(), 3);
    }

    #[test]
    fn traced_runs_observe_every_round() {
        let engine = ExperimentEngine::new(100, 2);
        let mut rounds = 0usize;
        let outs = engine.adaptive_traced(
            |s| ReservoirSampler::with_seed(4, s),
            |s| RandomAdversary::new(1 << 10, s),
            |_, _| rounds += 1,
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(rounds, 200);
    }

    #[test]
    fn continuous_grid_judges_prefixes() {
        use crate::game::ContinuousAdaptiveGame;
        let system = PrefixSystem::new(1 << 16);
        let game = ContinuousAdaptiveGame::geometric(1_000, 100, 0.2);
        let stats = ExperimentEngine::new(1_000, 2).continuous_sup(
            &game,
            &system,
            0.2,
            |s| ReservoirSampler::with_seed(1_000, s),
            |s| RandomAdversary::new(1 << 16, s),
        );
        // k = n: the reservoir is the stream, so every prefix is exact.
        assert!(stats.worst() < 1e-9);
    }

    #[test]
    fn source_map_equals_batch_map_sequential_and_threaded() {
        use robust_sampling_streamgen::UniformSource;
        let n = 40_000usize;
        let via_batch: Vec<Vec<u64>> = ExperimentEngine::new(n, 4).batch_map(
            |s| ReservoirSampler::with_seed(64, s),
            |seed| robust_sampling_streamgen::uniform(n, 1 << 20, seed),
            |_, _, summary| summary.sample().to_vec(),
        );
        for threads in [1usize, 3] {
            let via_source: Vec<Vec<u64>> =
                ExperimentEngine::new(n, 4).threads(threads).source_map(
                    |s| ReservoirSampler::with_seed(64, s),
                    |seed| UniformSource::new(n, 1 << 20, seed),
                    |_, summary| summary.sample().to_vec(),
                );
            assert_eq!(via_batch, via_source, "threads={threads}");
        }
    }

    #[test]
    fn threaded_trials_are_bit_identical_to_sequential() {
        let system = PrefixSystem::new(1 << 16);
        let run = |threads: usize| {
            ExperimentEngine::new(1_500, 7).threads(threads).adaptive(
                &system,
                |s| ReservoirSampler::with_seed(48, s),
                |s| QuantileHunterAdversary::new(1 << 16, s),
            )
        };
        let seq = run(1);
        for threads in [2, 3, 8, 32] {
            assert_eq!(seq.per_trial, run(threads).per_trial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_map_preserves_seed_order() {
        let engine = ExperimentEngine::new(200, 9).with_base_seed(5).threads(4);
        let seeds: Vec<u64> = engine.adaptive_map(
            |s| ReservoirSampler::with_seed(8, s),
            |s| RandomAdversary::new(1 << 10, s),
            |seed, _, _| seed,
        );
        assert_eq!(seeds, (5..14).collect::<Vec<u64>>());
    }

    #[test]
    fn run_stats_aggregations() {
        let s = RunStats::new(vec![0.1, 0.3, 0.2]);
        assert!((s.worst() - 0.3).abs() < 1e-12);
        assert!((s.mean() - 0.2).abs() < 1e-12);
        assert!(s.all_within(0.3));
        assert!(!s.all_within(0.25));
        assert!((s.fraction_above(0.15) - 2.0 / 3.0).abs() < 1e-12);
    }
}
