//! The [`StreamSummary`] trait and its implementations for every
//! stream-consuming type in this crate.

use crate::estimators::SampleQuantiles;
use crate::sampler::{
    BernoulliSampler, BottomKSampler, EveryKthSampler, ReservoirSampler, StreamSampler,
    WeightedReservoirSampler,
};
use crate::sketch::{RobustHeavyHitterSketch, RobustQuantileSketch};
use crate::window::ChainSampler;

/// A streaming summary: anything that ingests a stream element by element
/// (or in batches) and retains a bounded digest of it.
///
/// This is the engine layer's common denominator over samplers, robust
/// sketches, baseline sketches, and distributed sites. The contract for
/// [`ingest_batch`](Self::ingest_batch) is strict equivalence:
/// `s.ingest_batch(xs)` must leave the summary in **exactly** the state
/// that `for x in xs { s.ingest(x) }` would (same retained elements, same
/// RNG stream) — overriding it buys speed, never different answers.
pub trait StreamSummary<T> {
    /// Process one stream element.
    fn ingest(&mut self, x: T);

    /// Process a batch of stream elements. Equivalent, state-for-state,
    /// to ingesting each element in order; summaries with a sublinear
    /// bulk path override this.
    fn ingest_batch(&mut self, xs: &[T])
    where
        T: Clone,
    {
        for x in xs {
            self.ingest(x.clone());
        }
    }

    /// Stream elements processed so far.
    fn items_seen(&self) -> usize;

    /// Retained elements/counters — the memory footprint in units of `T`
    /// (or counter slots, for sketches).
    fn space(&self) -> usize;

    /// Name used in experiment reports.
    fn summary_name(&self) -> &'static str;
}

/// A summary that can answer rank/quantile queries over everything it
/// has seen (the Corollary 1.5 interface).
pub trait QuantileSummary<T>: StreamSummary<T> {
    /// The estimated `q`-quantile; `None` before the first element.
    fn estimate_quantile(&self, q: f64) -> Option<T>;

    /// Estimated number of stream elements `≤ x`.
    fn estimate_rank(&self, x: &T) -> f64;
}

/// A summary that can answer per-item frequency queries (the Corollary
/// 1.6 interface).
pub trait FrequencySummary<T>: StreamSummary<T> {
    /// Estimated number of occurrences of `x` in the stream.
    fn estimate_count(&self, x: &T) -> f64;

    /// Items with estimated stream density `≥ threshold`, densest first,
    /// as `(item, estimated density)`.
    fn heavy_items(&self, threshold: f64) -> Vec<(T, f64)>;
}

// ---------------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------------

impl<T: Clone> StreamSummary<T> for BernoulliSampler<T> {
    fn ingest(&mut self, x: T) {
        let _ = self.observe(x);
    }

    fn ingest_batch(&mut self, xs: &[T]) {
        // Geometric skip-sampling: O(p·|xs|) expected work.
        self.observe_batch(xs);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        self.sample().len()
    }

    fn summary_name(&self) -> &'static str {
        "bernoulli"
    }
}

impl<T: Clone> StreamSummary<T> for ReservoirSampler<T> {
    fn ingest(&mut self, x: T) {
        let _ = self.observe(x);
    }

    fn ingest_batch(&mut self, xs: &[T]) {
        // Algorithm L gap skipping: O(k·ln(|xs|/k)) expected work.
        self.observe_batch(xs);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        self.sample().len()
    }

    fn summary_name(&self) -> &'static str {
        "reservoir"
    }
}

impl<T: Clone> StreamSummary<T> for BottomKSampler<T> {
    fn ingest(&mut self, x: T) {
        let _ = self.observe(x);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        StreamSampler::sample(self).len()
    }

    fn summary_name(&self) -> &'static str {
        "bottom-k"
    }
}

impl<T: Clone> StreamSummary<T> for EveryKthSampler<T> {
    fn ingest(&mut self, x: T) {
        let _ = self.observe(x);
    }

    fn ingest_batch(&mut self, xs: &[T]) {
        // Stride arithmetic: O(|xs|/stride) work.
        self.observe_batch(xs);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        StreamSampler::sample(self).len()
    }

    fn summary_name(&self) -> &'static str {
        "every-kth"
    }
}

/// Unit-weight ingestion; use
/// [`observe_weighted`](WeightedReservoirSampler::observe_weighted)
/// directly for weighted streams.
impl<T: Clone> StreamSummary<T> for WeightedReservoirSampler<T> {
    fn ingest(&mut self, x: T) {
        let _ = self.observe_weighted(x, 1.0);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        self.k().min(self.observed())
    }

    fn summary_name(&self) -> &'static str {
        "weighted-reservoir"
    }
}

impl<T: Clone> StreamSummary<T> for ChainSampler<T> {
    fn ingest(&mut self, x: T) {
        self.observe(x);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        self.k()
    }

    fn summary_name(&self) -> &'static str {
        "chain(window)"
    }
}

// ---------------------------------------------------------------------------
// Robust sketches (Corollaries 1.5 / 1.6)
// ---------------------------------------------------------------------------

impl<T: Ord + Clone> StreamSummary<T> for RobustQuantileSketch<T> {
    fn ingest(&mut self, x: T) {
        self.observe(x);
    }

    fn ingest_batch(&mut self, xs: &[T]) {
        self.observe_batch(xs);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        self.capacity()
    }

    fn summary_name(&self) -> &'static str {
        "robust-quantiles"
    }
}

impl<T: Ord + Clone> QuantileSummary<T> for RobustQuantileSketch<T> {
    fn estimate_quantile(&self, q: f64) -> Option<T> {
        self.quantile(q)
    }

    fn estimate_rank(&self, x: &T) -> f64 {
        self.rank(x)
    }
}

impl<T: Ord + Clone> StreamSummary<T> for RobustHeavyHitterSketch<T> {
    fn ingest(&mut self, x: T) {
        self.observe(x);
    }

    fn ingest_batch(&mut self, xs: &[T]) {
        self.observe_batch(xs);
    }

    fn items_seen(&self) -> usize {
        self.observed()
    }

    fn space(&self) -> usize {
        self.capacity()
    }

    fn summary_name(&self) -> &'static str {
        "robust-heavy-hitters"
    }
}

impl<T: Ord + Clone> FrequencySummary<T> for RobustHeavyHitterSketch<T> {
    fn estimate_count(&self, x: &T) -> f64 {
        self.density(x) * self.observed() as f64
    }

    fn heavy_items(&self, threshold: f64) -> Vec<(T, f64)> {
        self.report()
            .into_iter()
            .filter(|h| h.sample_density >= threshold)
            .map(|h| (h.item, h.sample_density))
            .collect()
    }
}

/// A raw reservoir doubles as a quantile summary via
/// [`SampleQuantiles`] — the estimator path of Corollary 1.5 without the
/// self-sizing wrapper.
impl<T: Ord + Clone> QuantileSummary<T> for ReservoirSampler<T> {
    fn estimate_quantile(&self, q: f64) -> Option<T> {
        if self.sample().is_empty() {
            return None;
        }
        Some(
            SampleQuantiles::new(self.sample(), self.observed())
                .quantile(q)
                .clone(),
        )
    }

    fn estimate_rank(&self, x: &T) -> f64 {
        if self.sample().is_empty() {
            return 0.0;
        }
        SampleQuantiles::new(self.sample(), self.observed()).rank(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_and_elementwise_agree_for_reservoir() {
        let stream: Vec<u64> = (0..10_000).collect();
        let mut a = ReservoirSampler::with_seed(64, 9);
        let mut b = ReservoirSampler::with_seed(64, 9);
        for &x in &stream {
            a.ingest(x);
        }
        b.ingest_batch(&stream);
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.items_seen(), b.items_seen());
        assert_eq!(a.total_stored(), b.total_stored());
    }

    #[test]
    fn batch_and_elementwise_agree_for_bernoulli() {
        let stream: Vec<u64> = (0..10_000).collect();
        let mut a = BernoulliSampler::with_seed(0.03, 4);
        let mut b = BernoulliSampler::with_seed(0.03, 4);
        for &x in &stream {
            a.ingest(x);
        }
        b.ingest_batch(&stream);
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.items_seen(), b.items_seen());
    }

    #[test]
    fn batch_split_points_do_not_matter() {
        // Ingesting one stream as many unevenly-sized batches must match
        // one whole-stream batch.
        let stream: Vec<u64> = (0..5_000).rev().collect();
        let mut whole = ReservoirSampler::with_seed(32, 7);
        whole.ingest_batch(&stream);
        let mut pieces = ReservoirSampler::with_seed(32, 7);
        let mut rest: &[u64] = &stream;
        let mut chunk = 1usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            pieces.ingest_batch(&rest[..take]);
            rest = &rest[take..];
            chunk = chunk * 2 + 1;
        }
        assert_eq!(whole.sample(), pieces.sample());
        assert_eq!(whole.total_stored(), pieces.total_stored());
    }

    #[test]
    fn every_kth_batch_matches_elementwise() {
        let stream: Vec<u64> = (0..1_000).collect();
        let mut a = EveryKthSampler::new(7);
        let mut b = EveryKthSampler::new(7);
        for &x in &stream {
            a.ingest(x);
        }
        // Split at an awkward boundary.
        b.ingest_batch(&stream[..13]);
        b.ingest_batch(&stream[13..]);
        assert_eq!(StreamSampler::sample(&a), StreamSampler::sample(&b));
    }

    #[test]
    fn quantile_summary_through_trait_object() {
        let mut s = RobustQuantileSketch::<u64>::new(20.0, 0.1, 0.05, 3);
        let stream: Vec<u64> = (0..50_000).collect();
        {
            let dyn_s: &mut dyn StreamSummary<u64> = &mut s;
            dyn_s.ingest_batch(&stream);
        }
        let med = s.estimate_quantile(0.5).unwrap() as f64;
        assert!((med - 25_000.0).abs() < 5_000.0, "median {med}");
        assert_eq!(s.items_seen(), 50_000);
    }

    #[test]
    fn frequency_summary_reports_planted_hitter() {
        let mut s = RobustHeavyHitterSketch::<u64>::new(14.0, 0.1, 0.05, 0.05, 5);
        let stream: Vec<u64> = (0..20_000)
            .map(|i| if i % 4 == 0 { 7 } else { 1_000 + i })
            .collect();
        s.ingest_batch(&stream);
        let heavy = s.heavy_items(0.1);
        assert!(heavy.iter().any(|(item, _)| *item == 7), "missed hitter");
        assert!((s.estimate_count(&7) - 5_000.0).abs() < 1_500.0);
    }
}
