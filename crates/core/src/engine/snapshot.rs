//! [`SnapshotCodec`]: checkpointable summaries, with no serde dependency.
//!
//! A long-running serving deployment (the `service` crate) must be able to
//! stop, persist its summaries, and resume with **state-identical**
//! behaviour — the restored summary answers every query exactly as the
//! uninterrupted one would, and keeps ingesting with the identical RNG
//! stream. That is a stronger contract than "round-trips the sample": it
//! includes the private algorithmic state (Algorithm L thresholds, pending
//! geometric gaps, raw RNG words) that the paper's adversary never sees
//! but a resumed process needs.
//!
//! The encoding is deliberately primitive: a flat little-endian byte
//! string of `u64`/`f64` words and length-prefixed sequences, written by
//! the `put_*` helpers and read back through [`SnapshotReader`]. No
//! versioned schema, no external crates — the service layer wraps the raw
//! bytes in its own magic/version envelope.
//!
//! Implemented by the summaries the serving layer checkpoints:
//! [`BernoulliSampler<u64>`](crate::sampler::BernoulliSampler),
//! [`ReservoirSampler<u64>`](crate::sampler::ReservoirSampler), both
//! robust sketches, and [`ShardedSummary`](crate::engine::ShardedSummary)
//! over any codec-capable shard type. The round-trip law
//! (`save` → [`restore`](SnapshotCodec::restore) → continue ≡
//! uninterrupted run, per seed) is property-tested in
//! `tests/service_determinism.rs`.

use std::fmt;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte string ended before the decoder was done.
    UnexpectedEof,
    /// A decoded value violated an invariant of the target type.
    Corrupt(&'static str),
    /// Decoding finished with bytes left over (wrong type or envelope).
    TrailingBytes(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnexpectedEof => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append one little-endian `u64` word.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one `f64` as its raw bit pattern (exact round-trip, NaN-safe).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `usize` (as `u64`; summaries never exceed `u64` counts).
#[inline]
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append a length-prefixed `u64` sequence.
pub fn put_u64_seq(out: &mut Vec<u8>, vs: &[u64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u64(out, v);
    }
}

/// Cursor over an encoded snapshot byte string.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next `u64` word.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let end = self.pos + 8;
        if end > self.buf.len() {
            return Err(SnapshotError::UnexpectedEof);
        }
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(w))
    }

    /// The next `f64` (bit-pattern encoded).
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// The next `usize` (encoded as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// The next length-prefixed `u64` sequence.
    pub fn u64_seq(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.usize()?;
        if len.saturating_mul(8) > self.remaining() {
            return Err(SnapshotError::UnexpectedEof);
        }
        (0..len).map(|_| self.u64()).collect()
    }
}

/// The **frame high-water mark** a serving checkpoint envelope carries:
/// how many ingest frames the checkpointed process had fully applied
/// ("acked") at the moment the cut was taken.
///
/// The mark is what makes checkpoint-based failover replayable without
/// idempotent ingest: a router that retains the frame window since the
/// last checkpoint restores a crashed node from its envelope, reads the
/// mark back, and re-sends **only** the frames with index at or past it
/// — every earlier frame is already inside the restored summary state,
/// so replaying it would double-count. Frames are counted at the ingest
/// boundary (one mark increment per applied frame, empty or not), so
/// the router's send counter and the node's ack counter advance in
/// lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct FrameHwm(pub u64);

impl FrameHwm {
    /// Count one more applied frame.
    #[inline]
    pub fn ack(&mut self) {
        self.0 += 1;
    }

    /// Frames applied so far.
    #[inline]
    pub fn frames(self) -> u64 {
        self.0
    }
}

impl SnapshotCodec for FrameHwm {
    fn save_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }

    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FrameHwm(r.u64()?))
    }
}

/// A summary that can be persisted and resumed with state-identical
/// behaviour.
///
/// The contract: for any summary `s`,
/// `Self::restore(&s.save())` succeeds and the restored value is
/// indistinguishable from `s` under every operation — same query answers,
/// same retained elements, and the **same RNG stream** for all future
/// ingestion, so `save → restore → continue` equals the uninterrupted
/// run element for element.
pub trait SnapshotCodec: Sized {
    /// Append this summary's full state to `out`.
    fn save_into(&self, out: &mut Vec<u8>);

    /// Decode one summary from the reader, leaving the cursor just past
    /// its encoding (so codecs nest — sharded containers decode their
    /// shards in sequence).
    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;

    /// The state as one owned byte string.
    fn save(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.save_into(&mut out);
        out
    }

    /// Decode from exactly `bytes` (trailing bytes are an error).
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        let v = Self::restore_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        let mut out = Vec::new();
        put_u64(&mut out, 7);
        put_f64(&mut out, -0.25);
        put_u64_seq(&mut out, &[1, 2, 3]);
        let mut r = SnapshotReader::new(&out);
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.f64().unwrap(), -0.25);
        assert_eq!(r.u64_seq().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let mut out = Vec::new();
        put_u64_seq(&mut out, &[1, 2, 3]);
        let mut r = SnapshotReader::new(&out[..out.len() - 1]);
        assert_eq!(r.u64_seq(), Err(SnapshotError::UnexpectedEof));
    }

    #[test]
    fn bogus_length_prefix_is_rejected_before_allocating() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut r = SnapshotReader::new(&out);
        assert!(r.u64_seq().is_err());
    }

    #[test]
    fn frame_hwm_round_trips_and_orders() {
        let mut hwm = FrameHwm::default();
        assert_eq!(hwm.frames(), 0);
        for _ in 0..3 {
            hwm.ack();
        }
        assert_eq!(hwm, FrameHwm(3));
        assert!(FrameHwm(2) < hwm);
        let bytes = hwm.save();
        assert_eq!(bytes.len(), 8);
        assert_eq!(FrameHwm::restore(&bytes).unwrap(), hwm);
        assert_eq!(
            FrameHwm::restore(&bytes[..7]),
            Err(SnapshotError::UnexpectedEof)
        );
    }

    #[test]
    fn nan_f64_round_trips_exactly() {
        let mut out = Vec::new();
        put_f64(&mut out, f64::NAN);
        put_f64(&mut out, f64::INFINITY);
        let mut r = SnapshotReader::new(&out);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
    }
}
