//! The [`MergeableSummary`] capability trait: summaries whose guarantees
//! survive composition.
//!
//! Ben-Eliezer & Yogev's robustness statements are about *samples*, and a
//! sound merge of samples is exactly what a production deployment needs to
//! shard a stream across cores (or sites) and reassemble the pieces: if
//! each shard's summary is an `(ε, δ)`-faithful digest of its substream
//! and `merge` composes them without losing the guarantee, the merged
//! summary answers for the whole stream.
//! [`ShardedSummary`](crate::engine::ShardedSummary) builds data-parallel
//! ingestion on top of this trait.
//!
//! What "sound" means varies by summary — the impls document their exact
//! contract:
//!
//! * **Exact, no error growth** — [`BernoulliSampler`] (disjoint Bernoulli
//!   samples concatenate), [`BottomKSampler`] (union of i.i.d. keys, keep
//!   the `k` smallest), and Count-Min in the `sketches` crate (counter
//!   matrices add).
//! * **Distributionally exact** — [`ReservoirSampler`] and the robust
//!   sketches wrapping it: a weighted subsample-on-merge whose output is
//!   distributed identically to one reservoir run over the concatenated
//!   stream.
//! * **Error-bound preserving** — KLL, GK, and merge–reduce in the
//!   `sketches` crate (`±εn` rank error over the union).
//! * **Error-bound additive** — Misra–Gries and SpaceSaving: each side
//!   contributes its own `n_i/(k+1)` (resp. `n_i/k`) slack, which sums to
//!   the single-summary bound over the union, but the *post-merge* counter
//!   set may differ from a one-pass run's.

use crate::engine::summary::StreamSummary;
use crate::sampler::{BernoulliSampler, BottomKSampler, ReservoirSampler};
use crate::sketch::{RobustHeavyHitterSketch, RobustQuantileSketch};

/// A summary that can absorb another summary of the same type, as if it
/// had ingested the other's substream after its own.
///
/// The contract: if `a` summarises stream `A` and `b` summarises stream
/// `B` (built independently — separate RNGs), then after `a.merge(b)`,
/// `a` is a valid summary of the concatenation `A ‖ B`, with the error /
/// distributional guarantee stated by the implementing type. Merging is
/// deterministic given the summaries' seeds, and the merged summary can
/// keep ingesting.
pub trait MergeableSummary<T>: StreamSummary<T> {
    /// Absorb `other`, leaving `self` a summary of both streams.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Capture this summary's full state into a reusable scratch slot —
    /// the state-capture half of an off-thread merge pipeline (a shard
    /// worker captures on publish cadence; a publisher thread merges the
    /// captures in shard order while ingestion keeps running).
    ///
    /// An occupied slot is overwritten in place via [`Clone::clone_from`],
    /// so implementors whose `clone_from` reuses heap buffers pay no
    /// fresh allocation on recapture; an empty slot is filled with a
    /// fresh clone. Either way the slot afterwards holds a state
    /// bit-identical to `self` (same sample, same private RNG/gap state),
    /// so merging captures is indistinguishable from merging the shards
    /// themselves.
    fn capture_into(&self, slot: &mut Option<Self>)
    where
        Self: Sized + Clone,
    {
        match slot {
            Some(s) => s.clone_from(self),
            None => *slot = Some(self.clone()),
        }
    }
}

/// Merge `shards` left-to-right in shard order — the one canonical merge
/// loop behind [`ShardedSummary::merged`](crate::engine::ShardedSummary),
/// epoch publication in the service crate, and checkpoint recovery.
/// Shard order matters: merge soundness is only stated for a fixed
/// composition order, and the service's bit-identity contract compares
/// served epochs against offline merges performed in this exact order.
///
/// # Panics
///
/// Panics if `shards` yields no summary.
pub fn merge_in_shard_order<T, S, I>(shards: I) -> S
where
    S: MergeableSummary<T>,
    I: IntoIterator<Item = S>,
{
    let mut it = shards.into_iter();
    let mut out = it.next().expect("at least one shard");
    for s in it {
        out.merge(s);
    }
    out
}

impl<T: Clone> MergeableSummary<T> for BernoulliSampler<T> {
    fn merge(&mut self, other: Self) {
        BernoulliSampler::merge(self, other);
    }
}

impl<T: Clone> MergeableSummary<T> for ReservoirSampler<T> {
    fn merge(&mut self, other: Self) {
        ReservoirSampler::merge(self, other);
    }
}

impl<T: Clone> MergeableSummary<T> for BottomKSampler<T> {
    fn merge(&mut self, other: Self) {
        BottomKSampler::merge(self, other);
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for RobustQuantileSketch<T> {
    fn merge(&mut self, other: Self) {
        RobustQuantileSketch::merge(self, other);
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for RobustHeavyHitterSketch<T> {
    fn merge(&mut self, other: Self) {
        RobustHeavyHitterSketch::merge(self, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::prefix_discrepancy;
    use crate::engine::summary::QuantileSummary;
    use crate::sampler::StreamSampler;

    #[test]
    fn bernoulli_merge_concatenates_disjoint_samples() {
        let mut a = BernoulliSampler::with_seed(0.1, 1);
        let mut b = BernoulliSampler::with_seed(0.1, 2);
        a.observe_batch(&(0..5_000u64).collect::<Vec<_>>());
        b.observe_batch(&(5_000..10_000u64).collect::<Vec<_>>());
        let (sa, sb) = (a.sample().to_vec(), b.sample().to_vec());
        MergeableSummary::merge(&mut a, b);
        assert_eq!(a.observed(), 10_000);
        let expect: Vec<u64> = sa.into_iter().chain(sb).collect();
        assert_eq!(a.sample(), expect.as_slice());
        // The merged sampler keeps streaming with the pending gap.
        a.observe_batch(&(10_000..20_000u64).collect::<Vec<_>>());
        assert_eq!(a.observed(), 20_000);
        assert!(a.sample().len() > expect.len());
    }

    #[test]
    #[should_panic(expected = "different rates")]
    fn bernoulli_merge_rejects_mismatched_rates() {
        let mut a = BernoulliSampler::<u64>::with_seed(0.1, 1);
        let b = BernoulliSampler::<u64>::with_seed(0.2, 2);
        a.merge(b);
    }

    #[test]
    fn reservoir_merge_small_union_keeps_everything() {
        let mut a = ReservoirSampler::with_seed(64, 1);
        let mut b = ReservoirSampler::with_seed(64, 2);
        for x in 0..20u64 {
            a.observe(x);
        }
        for x in 20..40u64 {
            b.observe(x);
        }
        a.merge(b);
        assert_eq!(a.observed(), 40);
        let mut got = a.sample().to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..40u64).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_merge_is_full_and_subset_of_union() {
        let mut a = ReservoirSampler::with_seed(128, 3);
        let mut b = ReservoirSampler::with_seed(128, 4);
        a.observe_batch(&(0..30_000u64).collect::<Vec<_>>());
        b.observe_batch(&(30_000..50_000u64).collect::<Vec<_>>());
        a.merge(b);
        assert_eq!(a.observed(), 50_000);
        assert_eq!(a.sample().len(), 128);
        assert!(a.sample().iter().all(|&x| x < 50_000));
    }

    #[test]
    fn reservoir_merge_split_is_proportional() {
        // A saw 4x the data of B: ≈ 80% of merged slots should come from A.
        let trials = 400;
        let mut from_a = 0usize;
        let mut total = 0usize;
        for t in 0..trials {
            let mut a = ReservoirSampler::with_seed(32, t);
            let mut b = ReservoirSampler::with_seed(32, 10_000 + t);
            a.observe_batch(&(0..8_000u64).collect::<Vec<_>>());
            b.observe_batch(&(8_000..10_000u64).collect::<Vec<_>>());
            a.merge(b);
            from_a += a.sample().iter().filter(|&&x| x < 8_000).count();
            total += a.sample().len();
        }
        let frac = from_a as f64 / total as f64;
        assert!(
            (0.76..0.84).contains(&frac),
            "A-fraction {frac}, expect 0.8"
        );
    }

    #[test]
    fn reservoir_merge_can_keep_streaming() {
        // After a merge the threshold is re-drawn for the combined length;
        // continued ingestion must keep the sample representative.
        let mut a = ReservoirSampler::with_seed(256, 5);
        let mut b = ReservoirSampler::with_seed(256, 6);
        a.observe_batch(&(0..25_000u64).collect::<Vec<_>>());
        b.observe_batch(&(25_000..50_000u64).collect::<Vec<_>>());
        a.merge(b);
        a.observe_batch(&(50_000..100_000u64).collect::<Vec<_>>());
        assert_eq!(a.observed(), 100_000);
        assert_eq!(a.sample().len(), 256);
        let stream: Vec<u64> = (0..100_000).collect();
        let d = prefix_discrepancy(&stream, a.sample()).value;
        assert!(d < 0.12, "post-merge stream discrepancy {d}");
        // Late elements must still be admitted at rate ~k/n.
        let late = a.sample().iter().filter(|&&x| x >= 50_000).count();
        assert!(late > 256 / 5, "only {late}/256 late elements");
    }

    #[test]
    #[should_panic(expected = "smaller capacity")]
    fn reservoir_merge_rejects_full_smaller_reservoir() {
        let mut a = ReservoirSampler::with_seed(64, 1);
        let mut b = ReservoirSampler::with_seed(8, 2);
        a.observe_batch(&(0..1_000u64).collect::<Vec<_>>());
        b.observe_batch(&(0..1_000u64).collect::<Vec<_>>());
        a.merge(b);
    }

    #[test]
    fn bottom_k_merge_keeps_smallest_keys_exactly() {
        let mut a = BottomKSampler::with_seed(16, 7);
        let mut b = BottomKSampler::with_seed(16, 8);
        for x in 0..2_000u64 {
            a.observe(x);
        }
        for x in 2_000..4_000u64 {
            b.observe(x);
        }
        let mut union: Vec<(f64, u64)> = a
            .keys()
            .iter()
            .copied()
            .zip(a.sample().iter().copied())
            .chain(b.keys().iter().copied().zip(b.sample().iter().copied()))
            .collect();
        union.sort_by(|x, y| x.0.total_cmp(&y.0));
        let expect: Vec<u64> = union[..16].iter().map(|&(_, x)| x).collect();
        a.merge(b);
        assert_eq!(a.observed(), 4_000);
        let mut got = a.sample().to_vec();
        let mut want = expect;
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn robust_quantile_merge_tracks_union_median() {
        let mut a = RobustQuantileSketch::<u64>::new(20.0, 0.1, 0.05, 1);
        let mut b = RobustQuantileSketch::<u64>::new(20.0, 0.1, 0.05, 2);
        a.observe_batch(&(0..40_000u64).collect::<Vec<_>>());
        b.observe_batch(&(40_000..80_000u64).collect::<Vec<_>>());
        a.merge(b);
        assert_eq!(a.observed(), 80_000);
        let med = a.estimate_quantile(0.5).unwrap() as f64;
        assert!((med - 40_000.0).abs() < 0.1 * 80_000.0, "median {med}");
    }

    #[test]
    fn capture_into_reuses_the_slot_and_is_bit_identical() {
        let mut s = ReservoirSampler::with_seed(64, 9);
        s.observe_batch(&(0..10_000u64).collect::<Vec<_>>());
        let mut slot: Option<ReservoirSampler<u64>> = None;
        MergeableSummary::<u64>::capture_into(&s, &mut slot);
        assert_eq!(slot.as_ref().unwrap().sample(), s.sample());
        // The capture carries the private RNG/gap state too: the capture
        // and the original evolve identically from here.
        s.observe_batch(&(10_000..20_000u64).collect::<Vec<_>>());
        // Recapture overwrites the occupied slot in place.
        MergeableSummary::<u64>::capture_into(&s, &mut slot);
        let mut captured = slot.take().unwrap();
        captured.observe_batch(&(20_000..30_000u64).collect::<Vec<_>>());
        s.observe_batch(&(20_000..30_000u64).collect::<Vec<_>>());
        assert_eq!(captured.sample(), s.sample());
    }

    #[test]
    fn merge_in_shard_order_matches_the_manual_left_fold() {
        let mut shards: Vec<ReservoirSampler<u64>> = (0..4)
            .map(|j| ReservoirSampler::with_seed(32, 100 + j))
            .collect();
        for (j, s) in shards.iter_mut().enumerate() {
            let lo = 5_000 * j as u64;
            s.observe_batch(&(lo..lo + 5_000).collect::<Vec<_>>());
        }
        let manual = {
            let mut it = shards.iter().cloned();
            let mut out = it.next().unwrap();
            for s in it {
                MergeableSummary::<u64>::merge(&mut out, s);
            }
            out
        };
        let folded: ReservoirSampler<u64> = super::merge_in_shard_order(shards);
        assert_eq!(folded.sample(), manual.sample());
        assert_eq!(folded.observed(), manual.observed());
    }

    #[test]
    fn robust_heavy_hitter_merge_finds_union_hitter() {
        let mut a = RobustHeavyHitterSketch::<u64>::new(14.0, 0.1, 0.05, 0.05, 3);
        let mut b = RobustHeavyHitterSketch::<u64>::new(14.0, 0.1, 0.05, 0.05, 4);
        // 7 is 25% of stream A and absent from B: 12.5% of the union.
        let sa: Vec<u64> = (0..20_000u64)
            .map(|i| if i % 4 == 0 { 7 } else { 100_000 + i })
            .collect();
        let sb: Vec<u64> = (0..20_000u64).map(|i| 200_000 + i).collect();
        a.observe_batch(&sa);
        b.observe_batch(&sb);
        a.merge(b);
        assert_eq!(a.observed(), 40_000);
        let d = a.density(&7);
        assert!((d - 0.125).abs() < 0.05, "density {d}");
    }
}
