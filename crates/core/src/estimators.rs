//! Sample-based estimators — the paper's §1.2 applications.
//!
//! Everything here consumes *only* the sample produced by a robust
//! sampler; the paper's Theorems 1.2/1.4 then transfer each estimator's
//! static guarantee to the adaptive adversarial setting:
//!
//! * [`SampleQuantiles`] — rank/quantile estimation (Corollary 1.5);
//! * [`heavy_hitters`] — the Corollary 1.6 `ε' = ε/3` thresholding rule;
//! * [`range_count`] — additive-`εn` range counting (`d_R(S)·n`);
//! * [`center_point`] / [`tukey_depth`] — β-center points via the
//!   \[CEM+96\] reduction (`ε = β/5`: a `6β/5`-center of the sample is a
//!   β-center of the stream);
//! * [`cluster_medoids`] — the clustering-acceleration recipe: cluster the
//!   sample, extrapolate to the stream.

use crate::approx;

// ---------------------------------------------------------------------------
// Quantiles (Corollary 1.5)
// ---------------------------------------------------------------------------

/// A quantile/rank sketch backed by a (robust) sample of a stream of known
/// length, per Corollary 1.5: if the sample is an ε-approximation w.r.t.
/// the prefix system, every rank estimate is within `±εn` and every
/// quantile is ε-close, *simultaneously*.
#[derive(Debug, Clone)]
pub struct SampleQuantiles<T> {
    sorted: Vec<T>,
    stream_len: usize,
}

impl<T: Ord + Clone> SampleQuantiles<T> {
    /// Build from a sample of a stream of `stream_len` elements.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `stream_len == 0`.
    pub fn new(sample: &[T], stream_len: usize) -> Self {
        assert!(!sample.is_empty(), "sample must be non-empty");
        assert!(stream_len > 0, "stream length must be positive");
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        Self { sorted, stream_len }
    }

    /// Estimated rank of `x` in the stream: `d_{[min,x]}(S)·n`.
    pub fn rank(&self, x: &T) -> f64 {
        let in_sample = self.sorted.partition_point(|v| v <= x);
        in_sample as f64 / self.sorted.len() as f64 * self.stream_len as f64
    }

    /// The estimated `q`-quantile of the stream (`0 ≤ q ≤ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> &T {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
        let target = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        &self.sorted[target - 1]
    }

    /// The estimated median.
    pub fn median(&self) -> &T {
        self.quantile(0.5)
    }

    /// Sample size backing the sketch.
    pub fn sample_len(&self) -> usize {
        self.sorted.len()
    }

    /// Worst-case rank error against the true stream, over a set of probe
    /// quantiles — the evaluation metric of experiment E6. Probes the true
    /// `q`-quantiles of `stream` for each `q` in `probes` and returns the
    /// max of `|rank_estimate − true_rank| / n`.
    pub fn max_rank_error(&self, stream: &[T], probes: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for &q in probes {
            let v = approx::quantile(stream, q).expect("non-empty stream");
            let true_rank = approx::rank_of(stream, &v) as f64;
            let est = self.rank(&v);
            worst = worst.max((est - true_rank).abs() / stream.len() as f64);
        }
        worst
    }
}

// ---------------------------------------------------------------------------
// Heavy hitters (Corollary 1.6)
// ---------------------------------------------------------------------------

/// A reported heavy hitter with its estimated stream frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitter<T> {
    /// The element.
    pub item: T,
    /// Its density in the sample (estimate of its stream density).
    pub sample_density: f64,
}

/// The Corollary 1.6 heavy-hitters rule: with an `ε' = ε/3`-approximate
/// sample w.r.t. singletons, report every element whose sample density is
/// `≥ α − ε'`. Every true `≥ α` hitter is reported; nothing below
/// `α − ε` is.
///
/// # Panics
///
/// Panics if `alpha ∉ (0, 1]` or `eps_prime` is negative or ≥ `alpha`.
pub fn heavy_hitters<T: Ord + Clone>(
    sample: &[T],
    alpha: f64,
    eps_prime: f64,
) -> Vec<HeavyHitter<T>> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
    assert!(
        (0.0..alpha).contains(&eps_prime),
        "eps' must satisfy 0 <= eps' < alpha"
    );
    if sample.is_empty() {
        return Vec::new();
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let density = (j - i) as f64 / n;
        // The 1e-12 slack absorbs f64 rounding in `alpha − ε'` so that a
        // density exactly at the threshold is reported, per the corollary.
        if density >= alpha - eps_prime - 1e-12 {
            out.push(HeavyHitter {
                item: sorted[i].clone(),
                sample_density: density,
            });
        }
        i = j;
    }
    // Highest density first for ergonomic consumption.
    out.sort_by(|a, b| b.sample_density.total_cmp(&a.sample_density));
    out
}

/// Exact stream-side evaluation of a heavy-hitters report: returns
/// `(missed, spurious)` — elements with true density ≥ `alpha` that were
/// not reported, and reported elements with true density < `alpha − eps`.
/// Both must be empty for the Corollary 1.6 guarantee to hold.
pub fn heavy_hitters_errors<T: Ord + Clone>(
    stream: &[T],
    report: &[HeavyHitter<T>],
    alpha: f64,
    eps: f64,
) -> (Vec<T>, Vec<T>) {
    let mut sorted = stream.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut missed = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let density = (j - i) as f64 / n;
        if density >= alpha && !report.iter().any(|h| h.item == sorted[i]) {
            missed.push(sorted[i].clone());
        }
        i = j;
    }
    let mut spurious = Vec::new();
    for h in report {
        let cnt =
            sorted.partition_point(|v| v <= &h.item) - sorted.partition_point(|v| v < &h.item);
        if (cnt as f64) < (alpha - eps) * n {
            spurious.push(h.item.clone());
        }
    }
    (missed, spurious)
}

// ---------------------------------------------------------------------------
// Range counting (§1.2)
// ---------------------------------------------------------------------------

/// Range-count estimate from a sample: `d_R(S) · n`, where membership is
/// given by `in_range`. With an ε-approximate sample the additive error is
/// at most `εn` (paper §1.2, "Range queries").
pub fn range_count<T>(sample: &[T], stream_len: usize, in_range: impl FnMut(&T) -> bool) -> f64 {
    approx::density_by(sample, in_range) * stream_len as f64
}

// ---------------------------------------------------------------------------
// Center points (§1.2 / [CEM+96])
// ---------------------------------------------------------------------------

/// Approximate Tukey depth of `c` in `points`, over a fan of `directions`
/// halfplane normals: `min_h d_h(points)` over halfplanes `h ∋ c`.
///
/// A point of depth `≥ β` is a β-center. Exact 2-D depth needs an
/// `O(s log s)` rotating sweep per query; this fan approximation (standard
/// in the discrepancy literature, and the same discretisation used by
/// [`HalfplaneSystem`](crate::set_system::HalfplaneSystem)) overestimates
/// depth by at most the fan's angular resolution and is what the E9
/// experiment uses on both sample and stream sides, keeping the comparison
/// fair.
///
/// # Panics
///
/// Panics if `points` is empty or `directions == 0`.
pub fn tukey_depth(points: &[(i64, i64)], c: (f64, f64), directions: usize) -> f64 {
    assert!(!points.is_empty(), "need at least one point");
    assert!(directions > 0, "need at least one direction");
    let mut depth = 1.0f64;
    for d in 0..directions {
        let theta = std::f64::consts::PI * d as f64 / directions as f64;
        let (nx, ny) = (theta.cos(), theta.sin());
        let pc = nx * c.0 + ny * c.1;
        let above = points
            .iter()
            .filter(|p| nx * p.0 as f64 + ny * p.1 as f64 >= pc - 1e-9)
            .count() as f64
            / points.len() as f64;
        let below = points
            .iter()
            .filter(|p| nx * p.0 as f64 + ny * p.1 as f64 <= pc + 1e-9)
            .count() as f64
            / points.len() as f64;
        depth = depth.min(above).min(below);
    }
    depth
}

/// Find an (approximate) deepest point of a sample: the sample point with
/// maximum [`tukey_depth`]. By [CEM+96, Lemma 6.1] via the paper's §1.2,
/// if the sample is a `(β/5)`-approximation w.r.t. halfplanes, a
/// `6β/5`-center of the sample is a β-center of the stream.
///
/// Returns `(point, depth_in_sample)`.
///
/// # Panics
///
/// Panics if `sample` is empty or `directions == 0`.
pub fn center_point(sample: &[(i64, i64)], directions: usize) -> ((i64, i64), f64) {
    assert!(!sample.is_empty(), "need at least one point");
    let mut best = (sample[0], -1.0f64);
    for &p in sample {
        let d = tukey_depth(sample, (p.0 as f64, p.1 as f64), directions);
        if d > best.1 {
            best = (p, d);
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Clustering acceleration (§1.2)
// ---------------------------------------------------------------------------

/// Greedy k-center (Gonzalez) on the sample — the paper's clustering
/// recipe: cluster the small robust sample instead of the full stream,
/// then extrapolate. Returns `k` medoids drawn from the sample.
///
/// # Panics
///
/// Panics if `sample` is empty or `k == 0`.
pub fn cluster_medoids(sample: &[(i64, i64)], k: usize) -> Vec<(i64, i64)> {
    assert!(!sample.is_empty(), "need at least one point");
    assert!(k > 0, "need at least one cluster");
    let dist2 = |a: (i64, i64), b: (i64, i64)| {
        let dx = (a.0 - b.0) as f64;
        let dy = (a.1 - b.1) as f64;
        dx * dx + dy * dy
    };
    let mut centers = vec![sample[0]];
    let mut dists: Vec<f64> = sample.iter().map(|&p| dist2(p, sample[0])).collect();
    while centers.len() < k.min(sample.len()) {
        let (idx, _) = dists
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        let c = sample[idx];
        centers.push(c);
        for (d, &p) in dists.iter_mut().zip(sample) {
            *d = d.min(dist2(p, c));
        }
    }
    centers
}

/// Maximum distance from any point to its nearest medoid — the k-center
/// objective, used to compare sample-derived centers against stream-derived
/// ones in the clustering example.
pub fn kcenter_cost(points: &[(i64, i64)], centers: &[(i64, i64)]) -> f64 {
    points
        .iter()
        .map(|&p| {
            centers
                .iter()
                .map(|&c| {
                    let dx = (p.0 - c.0) as f64;
                    let dy = (p.1 - c.1) as f64;
                    (dx * dx + dy * dy).sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_exact_on_full_sample() {
        let stream: Vec<u64> = (1..=1000).collect();
        let q = SampleQuantiles::new(&stream, stream.len());
        assert_eq!(*q.median(), 500);
        assert_eq!(*q.quantile(0.25), 250);
        assert!((q.rank(&100) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_rank_error_small_for_uniform_subsample() {
        let stream: Vec<u64> = (0..10_000).collect();
        // Every 10th element: a perfect systematic sample.
        let sample: Vec<u64> = stream.iter().copied().step_by(10).collect();
        let q = SampleQuantiles::new(&sample, stream.len());
        let err = q.max_rank_error(&stream, &[0.1, 0.25, 0.5, 0.75, 0.9]);
        assert!(err < 0.01, "rank error {err}");
    }

    #[test]
    fn rank_scales_to_stream_length() {
        let sample = vec![10u64, 20, 30, 40];
        let q = SampleQuantiles::new(&sample, 1000);
        assert!((q.rank(&25) - 500.0).abs() < 1e-9); // 2/4 of 1000
    }

    #[test]
    #[should_panic(expected = "sample must be non-empty")]
    fn quantiles_reject_empty() {
        let _ = SampleQuantiles::<u64>::new(&[], 10);
    }

    #[test]
    fn heavy_hitters_basic_thresholding() {
        // 50% zeros, 30% ones, 20% twos; alpha=0.4, eps'=0.1 ⇒ report ≥0.3.
        let mut sample = vec![0u64; 50];
        sample.extend(vec![1u64; 30]);
        sample.extend(vec![2u64; 20]);
        let hh = heavy_hitters(&sample, 0.4, 0.1);
        let items: Vec<u64> = hh.iter().map(|h| h.item).collect();
        assert_eq!(items, vec![0, 1]);
        assert!((hh[0].sample_density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heavy_hitters_corollary_guarantee_on_exact_sample() {
        // Sample = stream ⇒ zero approximation error ⇒ no misses/spurious.
        let mut stream = vec![7u64; 400];
        stream.extend(0..600u64);
        let alpha = 0.3;
        let eps = 0.15;
        let report = heavy_hitters(&stream, alpha, eps / 3.0);
        let (missed, spurious) = heavy_hitters_errors(&stream, &report, alpha, eps);
        assert!(missed.is_empty(), "missed {missed:?}");
        assert!(spurious.is_empty(), "spurious {spurious:?}");
    }

    #[test]
    fn heavy_hitters_empty_sample() {
        assert!(heavy_hitters::<u64>(&[], 0.5, 0.1).is_empty());
    }

    #[test]
    fn range_count_additive_error() {
        let stream: Vec<u64> = (0..1000).collect();
        let sample: Vec<u64> = stream.iter().copied().step_by(10).collect();
        let est = range_count(&sample, stream.len(), |&x| x < 500);
        assert!((est - 500.0).abs() <= 10.0, "estimate {est}");
    }

    #[test]
    fn tukey_depth_of_centroid_of_square() {
        // A filled grid: its center has depth close to 1/2, a corner ~0.
        let pts: Vec<(i64, i64)> = (0..20).flat_map(|x| (0..20).map(move |y| (x, y))).collect();
        let center = tukey_depth(&pts, (9.5, 9.5), 90);
        let corner = tukey_depth(&pts, (0.0, 0.0), 90);
        assert!(center > 0.4, "center depth {center}");
        assert!(corner < 0.15, "corner depth {corner}");
    }

    #[test]
    fn center_point_of_sample_is_deep_in_stream() {
        // Stream = dense disk; sample = every 7th point. The sample's
        // center point must be a ~1/3-center of the full stream.
        let stream: Vec<(i64, i64)> = (-15..=15)
            .flat_map(|x| (-15..=15i64).map(move |y| (x, y)))
            .filter(|&(x, y)| x * x + y * y <= 225)
            .collect();
        let sample: Vec<(i64, i64)> = stream.iter().copied().step_by(7).collect();
        let (c, depth_in_sample) = center_point(&sample, 60);
        assert!(depth_in_sample > 0.25);
        let depth_in_stream = tukey_depth(&stream, (c.0 as f64, c.1 as f64), 60);
        assert!(
            depth_in_stream > 0.2,
            "sample center point too shallow in stream: {depth_in_stream}"
        );
    }

    #[test]
    fn kcenter_medoids_cover_clusters() {
        // Three well-separated blobs: 3 medoids must land one per blob.
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0i64, 0i64), (100, 0), (0, 100)] {
            for dx in -2..=2i64 {
                for dy in -2..=2i64 {
                    pts.push((cx + dx, cy + dy));
                }
            }
        }
        let medoids = cluster_medoids(&pts, 3);
        let cost = kcenter_cost(&pts, &medoids);
        assert!(cost < 10.0, "k-center cost {cost}");
    }

    #[test]
    fn kcenter_cost_zero_when_centers_are_points() {
        let pts = vec![(0i64, 0i64), (5, 5)];
        assert_eq!(kcenter_cost(&pts, &pts), 0.0);
    }
}
