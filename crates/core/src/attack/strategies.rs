//! The registered attack strategies.
//!
//! Each strategy is a small state machine implementing
//! [`AttackStrategy`]: deterministic per seed, observing only what
//! [`AttackContext`] exposes. The ports ([`BisectionAttack`],
//! [`ColliderAttack`]) reproduce the adversaries of the Figure 3 /
//! experiment-E13 machinery on the new interface; the rest target
//! specific summary families — see each type's docs for the theorem it
//! leans on and the defense class it is expected to break.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robust_sampling_streamgen::source::StreamSource;

use super::{AttackContext, AttackStrategy};

/// The Figure 3 shrinking-interval attack (Theorem 1.3), ported from
/// [`DiscreteAttackAdversary`](crate::adversary::DiscreteAttackAdversary)
/// onto the duel interface: probe `x = ⌊a + (1−p')(b−a)⌋`; if the probe
/// was stored, raise `a`, else lower `b` — trapping every stored element
/// below every discarded one (Claim 5.2).
///
/// Storedness is inferred by *membership*: the previous probe appears in
/// the visible sample iff it was stored. Probes are pairwise distinct
/// until exhaustion, so the inference is exact, and the attack needs no
/// sampler-specific insertion report — which is what lets it duel
/// arbitrary [`ObservableDefense`](super::ObservableDefense)s.
///
/// Over a 64-bit universe the precision budget is `ln N ≈ 44` nats
/// (Claim 5.1 wants `N ≥ n⁶ ln n`), so against all but the smallest
/// summaries the working interval collapses and the attack degrades to
/// flooding `a` — the expected, theorem-consistent outcome documented in
/// the robustness matrix. The dyadic
/// [`BisectionAdversary`](crate::adversary::BisectionAdversary) in
/// experiment E1 is the same attack with unbounded precision.
#[derive(Debug, Clone)]
pub struct BisectionAttack {
    a: u64,
    b: u64,
    p_prime: f64,
    prev: Option<u64>,
    exhausted: bool,
}

impl BisectionAttack {
    /// Attack with an explicit splitting fraction `p' ∈ (0, 1)` over
    /// `{0, …, universe−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `universe < 4` or `p' ∉ (0, 1)`.
    pub fn with_split(p_prime: f64, universe: u64) -> Self {
        assert!(universe >= 4, "universe too small for the attack");
        assert!(
            p_prime > 0.0 && p_prime < 1.0,
            "split fraction must be in (0,1), got {p_prime}"
        );
        Self {
            a: 1,
            b: universe,
            p_prime,
            prev: None,
            exhausted: false,
        }
    }

    /// The Figure 3 default for an `n`-round game: `p' = ln n / n`, the
    /// threshold rate below which Theorem 1.3 applies.
    ///
    /// # Panics
    ///
    /// Panics if `universe < 4` or `n < 2`.
    pub fn figure3(n: usize, universe: u64) -> Self {
        assert!(n >= 2, "attack needs n >= 2");
        let p_prime = ((n as f64).ln() / n as f64).clamp(1e-12, 0.5);
        Self::with_split(p_prime, universe)
    }

    /// Whether the working interval collapsed before the stream ended
    /// (the event Claim 5.1 bounds).
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Current working interval `[a, b]`.
    #[inline]
    pub fn working_range(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

impl AttackStrategy for BisectionAttack {
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64 {
        if let Some(prev) = self.prev {
            if ctx.sample.contains(&prev) {
                self.a = prev;
            } else {
                self.b = prev;
            }
        }
        if self.b.saturating_sub(self.a) < 2 {
            self.exhausted = true;
            self.prev = Some(self.a);
            return self.a;
        }
        let span = (self.b - self.a) as f64;
        let x = self.a + ((1.0 - self.p_prime) * span) as u64;
        let x = x.clamp(self.a + 1, self.b - 1);
        self.prev = Some(x);
        x
    }

    fn name(&self) -> &'static str {
        "bisection"
    }
}

/// The E13 linear-sketch attack (Hardt–Woodruff-style), ported onto the
/// duel interface: read the defense's hash structure through
/// [`StateOracle::row_colliders`](super::StateOracle::row_colliders),
/// then interleave one decoy per row with innocuous background traffic.
/// The victim id lives *outside* the nominal universe, so "never sent"
/// is literal — yet a Count-Min defense certifies it as heavy.
///
/// Against defenses with no hash structure (the oracle returns `None`)
/// the attack degrades to its background traffic: an oblivious uniform
/// stream, which robust samplers shrug off — exactly the E13 contrast.
#[derive(Debug)]
pub struct ColliderAttack {
    seed: u64,
    rng: StdRng,
    /// `None` until the first round mines the defense.
    decoys: Option<Vec<u64>>,
    sent: usize,
}

/// Offset of the phantom victim above the universe bound.
const VICTIM_OFFSET: u64 = 777_777;

impl ColliderAttack {
    /// Collision-mining attack seeded for its background traffic.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
            decoys: None,
            sent: 0,
        }
    }

    /// The phantom victim id for a given universe bound (outside it).
    pub fn victim(universe: u64) -> u64 {
        universe + VICTIM_OFFSET
    }

    /// The mined decoys, once round 1 has run (`None` before; empty if
    /// the defense exposed no hash structure).
    pub fn decoys(&self) -> Option<&[u64]> {
        self.decoys.as_deref()
    }
}

impl AttackStrategy for ColliderAttack {
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64 {
        let victim = Self::victim(ctx.universe);
        let decoys = self.decoys.get_or_insert_with(|| {
            // Mine one collider per hash row; search above the victim so
            // decoys are distinct from it and from all background ids.
            ctx.oracle
                .row_colliders(victim, victim + 1)
                .unwrap_or_default()
        });
        if !decoys.is_empty() && ctx.round.is_multiple_of(2) {
            let d = decoys[self.sent % decoys.len()];
            self.sent += 1;
            d
        } else {
            self.rng.random_range(0..ctx.universe)
        }
    }

    fn name(&self) -> &'static str {
        "collider"
    }

    // `seed` is carried so Debug output identifies the instance; the RNG
    // itself is the live state.
}

impl ColliderAttack {
    /// The seed this instance was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Greedy Kolmogorov–Smirnov witness amplification, specialised for the
/// prefix system and the continuous game (Theorems 1.2/1.4 stress): every
/// `stride` rounds, recompute the value `b*` maximising the signed gap
/// `F_history(b) − F_sample(b)` between the submitted stream and the
/// visible sample, then flood the side of `b*` that widens the gap.
///
/// Not provably optimal — Theorem 1.2 must hold against *every* strategy
/// — but markedly stronger than oblivious streams against undersized
/// summaries, and the strongest registered attack in the continuous
/// (every-prefix) game, where each checkpoint inherits the accumulated
/// skew.
#[derive(Debug)]
pub struct PrefixMassAttack {
    stride: usize,
    target: u64,
    side: i8,
    rng: StdRng,
}

impl PrefixMassAttack {
    /// Witness-chasing attack recomputing every `stride` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: usize, seed: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            stride,
            target: 0,
            side: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn recompute(&mut self, ctx: &AttackContext<'_>) {
        self.target = ctx.universe / 2;
        if ctx.history.is_empty() || ctx.sample.is_empty() {
            return;
        }
        let mut xs = ctx.history.to_vec();
        let mut ss = ctx.sample.to_vec();
        xs.sort_unstable();
        ss.sort_unstable();
        let (mut i, mut j) = (0usize, 0usize);
        let mut best = 0.0f64;
        while i < xs.len() || j < ss.len() {
            let v = match (xs.get(i), ss.get(j)) {
                (Some(&a), Some(&b)) => a.min(b),
                (Some(&a), None) => a,
                (None, Some(&b)) => b,
                (None, None) => unreachable!(),
            };
            while i < xs.len() && xs[i] <= v {
                i += 1;
            }
            while j < ss.len() && ss[j] <= v {
                j += 1;
            }
            let d = i as f64 / xs.len() as f64 - j as f64 / ss.len() as f64;
            if d.abs() > best {
                best = d.abs();
                self.target = v;
                self.side = if d > 0.0 { 1 } else { -1 };
            }
        }
    }
}

impl AttackStrategy for PrefixMassAttack {
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64 {
        // Rounds 1, 1+stride, 1+2·stride, … (this form also recomputes
        // every round at stride = 1, where `round % stride == 1` never
        // fires).
        if (ctx.round - 1).is_multiple_of(self.stride) {
            self.recompute(ctx);
        }
        if self.side > 0 {
            self.rng.random_range(0..=self.target.min(ctx.universe - 1))
        } else {
            let lo = (self.target + 1).min(ctx.universe - 1);
            self.rng.random_range(lo..ctx.universe)
        }
    }

    fn name(&self) -> &'static str {
        "prefix-mass"
    }
}

/// Median hunting against quantile summaries (Corollary 1.5's clients):
/// read the defense's *current median answer* — through
/// [`StateOracle::quantile_estimate`](super::StateOracle::quantile_estimate)
/// when the defense answers quantile queries, else the visible sample's
/// median — and flood strictly above it, so the stream's true median
/// climbs while a summary that under-refreshes stays anchored.
///
/// Generalises the sample-only
/// [`QuantileHunterAdversary`](crate::adversary::QuantileHunterAdversary):
/// against GK/KLL/merge-reduce (no retained sample exposed) the oracle
/// query is what makes the attack adaptive.
#[derive(Debug)]
pub struct MedianHuntAttack {
    rng: StdRng,
}

impl MedianHuntAttack {
    /// Median hunter with seeded flood traffic.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn observed_median(ctx: &AttackContext<'_>) -> Option<u64> {
        if let Some(m) = ctx.oracle.quantile_estimate(0.5) {
            return Some(m);
        }
        if ctx.sample.is_empty() {
            return None;
        }
        let mut s = ctx.sample.to_vec();
        s.sort_unstable();
        Some(s[s.len() / 2])
    }
}

impl AttackStrategy for MedianHuntAttack {
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64 {
        match Self::observed_median(ctx) {
            Some(median) => {
                let lo = median.saturating_add(1).min(ctx.universe - 1);
                self.rng.random_range(lo..ctx.universe)
            }
            None => self.rng.random_range(0..ctx.universe),
        }
    }

    fn name(&self) -> &'static str {
        "median-hunt"
    }
}

/// Eviction pumping against counter summaries (Misra–Gries,
/// SpaceSaving): build up a genuinely heavy victim for the first fifth
/// of the stream, then flood pairwise-distinct never-repeated values,
/// each of which decrements (MG) or displaces (SpaceSaving) the tracked
/// counters. The attack watches the visible counter set and, whenever the
/// victim has been evicted, probes it again — re-inserting it at
/// SpaceSaving's inflated `min+1` floor.
///
/// Deterministic counter summaries cannot be pushed *past* their
/// worst-case bounds (`n/(k+1)` undercount for MG, `n/k` overcount for
/// SpaceSaving — they hold against every adversary, adaptive included);
/// this strategy *saturates* those bounds, which is exactly what the
/// robustness matrix documents for them.
#[derive(Debug)]
pub struct EvictionPumpAttack {
    /// Next fresh never-repeated value (monotone).
    fresh: u64,
    victim: Option<u64>,
}

/// Offset above the universe where the fresh-value flood starts (disjoint
/// from background ids and from the collider victim range).
const FRESH_OFFSET: u64 = 10_000_000;

impl EvictionPumpAttack {
    /// Eviction pump (deterministic — no random traffic is needed).
    pub fn new() -> Self {
        Self {
            fresh: 0,
            victim: None,
        }
    }

    /// The victim id for a given universe bound (inside the universe, so
    /// frequency judges count it as ordinary traffic).
    pub fn victim(universe: u64) -> u64 {
        universe / 3
    }
}

impl Default for EvictionPumpAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackStrategy for EvictionPumpAttack {
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64 {
        let victim = *self.victim.get_or_insert(Self::victim(ctx.universe));
        if ctx.round <= ctx.n / 5 {
            return victim;
        }
        // Adaptive probe: if the victim fell out of the tracked set,
        // re-submit it (SpaceSaving re-admits at min+1 — an overcount
        // the attack pumps); otherwise keep the eviction pressure on.
        if ctx.round.is_multiple_of(64) && !ctx.sample.contains(&victim) {
            return victim;
        }
        let x = ctx.universe + FRESH_OFFSET + self.fresh;
        self.fresh += 1;
        x
    }

    fn name(&self) -> &'static str {
        "eviction-pump"
    }
}

/// The non-adaptive control: replays a scenario-registry workload
/// through the attack interface, ignoring the defense's state entirely.
/// Whatever gap the matrix shows between this row and the adaptive rows
/// *is* the paper's adaptivity premium.
///
/// Per seed, the emitted stream is element-identical to
/// [`materialize`](robust_sampling_streamgen::source::materialize) of the
/// underlying source (pinned by `tests/attack_registry.rs`).
pub struct ReplayAttack {
    source: Box<dyn StreamSource + Send>,
    buf: Vec<u64>,
    pos: usize,
    name: &'static str,
}

impl std::fmt::Debug for ReplayAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayAttack")
            .field("name", &self.name)
            .field("buffered", &(self.buf.len() - self.pos))
            .finish()
    }
}

/// Frame pulled per refill — small, so the control's memory profile
/// matches the adaptive strategies'.
const REPLAY_FRAME: usize = 1 << 10;

impl ReplayAttack {
    /// Replay a workload source under the given registry name.
    pub fn new(name: &'static str, source: Box<dyn StreamSource + Send>) -> Self {
        Self {
            source,
            buf: Vec::new(),
            pos: 0,
            name,
        }
    }

    /// Replay the named scenario-registry workload (`n` elements over
    /// `universe`, at `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not a registered scenario or `attack_name`
    /// is empty.
    pub fn from_workload(
        attack_name: &'static str,
        workload: &str,
        n: usize,
        universe: u64,
        seed: u64,
    ) -> Self {
        let spec = robust_sampling_streamgen::workload(workload)
            .unwrap_or_else(|| panic!("unregistered workload {workload:?}"));
        Self::new(attack_name, spec.source(n, universe, seed))
    }
}

impl AttackStrategy for ReplayAttack {
    fn next(&mut self, _ctx: &AttackContext<'_>) -> u64 {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            let got = self.source.next_chunk(&mut self.buf, REPLAY_FRAME);
            assert!(got > 0, "replay source exhausted before the duel ended");
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::DiscreteAttackAdversary;
    use crate::attack::{attack, Duel};
    use crate::game::AdaptiveGame;
    use crate::sampler::{BernoulliSampler, ReservoirSampler, StreamSampler};

    #[test]
    fn bisection_port_matches_the_legacy_adversary() {
        // The trait port infers storedness from sample membership instead
        // of the Observation report; on distinct probes the two are
        // equivalent, so the emitted streams must be identical.
        let n = 300usize;
        let universe = 1u64 << 62;
        let p = 0.01f64;
        for seed in 0..4u64 {
            let p_prime = p.max((n as f64).ln() / n as f64);
            let mut legacy = DiscreteAttackAdversary::for_bernoulli(p, n, universe);
            let mut s1 = BernoulliSampler::with_seed(p, seed);
            let legacy_out = AdaptiveGame::new(n).run(&mut s1, &mut legacy);

            let mut ported = BisectionAttack::with_split(p_prime, universe);
            let mut s2 = BernoulliSampler::with_seed(p, seed);
            let duel = Duel::new(n, universe).run(&mut s2, &mut ported);
            assert_eq!(legacy_out.stream, duel.stream, "seed {seed}");
            assert_eq!(legacy.exhausted(), ported.exhausted(), "seed {seed}");
        }
    }

    #[test]
    fn bisection_traps_a_tiny_bernoulli_sample() {
        let n = 300usize;
        let universe = 1u64 << 62;
        let mut wins = 0;
        for seed in 0..5u64 {
            let mut atk = BisectionAttack::with_split(0.019, universe);
            let mut defense = BernoulliSampler::<u64>::with_seed(0.01, seed);
            let out = Duel::new(n, universe).run(&mut defense, &mut atk);
            if atk.exhausted() || out.final_sample.is_empty() {
                continue;
            }
            let max_sampled = out.final_sample.iter().max().copied().unwrap();
            let min_unsampled = out
                .stream
                .iter()
                .filter(|x| !out.final_sample.contains(x))
                .min()
                .copied()
                .unwrap();
            assert!(max_sampled < min_unsampled);
            wins += 1;
        }
        assert!(wins >= 3, "attack landed only {wins}/5 times");
    }

    #[test]
    fn replay_matches_its_source() {
        use robust_sampling_streamgen::source::materialize;
        let n = 2_000usize;
        let universe = 1u64 << 18;
        let seed = 6u64;
        let mut defense = ReservoirSampler::<u64>::with_seed(16, 1);
        let mut atk = ReplayAttack::from_workload("replay-uniform", "uniform", n, universe, seed);
        let out = Duel::new(n, universe).run(&mut defense, &mut atk);
        let expect = materialize(
            robust_sampling_streamgen::workload("uniform")
                .unwrap()
                .source(n, universe, seed),
        );
        assert_eq!(out.stream, expect);
    }

    #[test]
    fn median_hunt_displaces_a_tiny_sample_median() {
        use crate::approx::prefix_discrepancy;
        let n = 2_000;
        let universe = 1u64 << 20;
        let mut defense = ReservoirSampler::<u64>::with_seed(4, 2);
        let mut atk = MedianHuntAttack::new(3);
        let out = Duel::new(n, universe).run(&mut defense, &mut atk);
        let d = prefix_discrepancy(&out.stream, &out.final_sample).value;
        assert!(d > 0.25, "hunter too weak: discrepancy {d}");
    }

    #[test]
    fn prefix_mass_is_at_least_as_strong_as_uniform_noise() {
        use crate::approx::prefix_discrepancy;
        let n = 3_000;
        let universe = 1u64 << 16;
        let mut noise_total = 0.0;
        let mut greedy_total = 0.0;
        for seed in 0..5u64 {
            let mut d1 = ReservoirSampler::<u64>::with_seed(10, seed);
            let mut a1 = attack("replay-uniform")
                .unwrap()
                .build(n, universe, 100 + seed);
            let o1 = Duel::new(n, universe).run(&mut d1, &mut a1);
            noise_total += prefix_discrepancy(&o1.stream, &o1.final_sample).value;

            let mut d2 = ReservoirSampler::<u64>::with_seed(10, seed);
            let mut a2 = PrefixMassAttack::new(64, 200 + seed);
            let o2 = Duel::new(n, universe).run(&mut d2, &mut a2);
            greedy_total += prefix_discrepancy(&o2.stream, &o2.final_sample).value;
        }
        assert!(
            greedy_total >= noise_total,
            "greedy {greedy_total} < noise {noise_total}"
        );
    }

    #[test]
    fn prefix_mass_recomputes_every_round_at_stride_one() {
        use crate::attack::NullOracle;
        // Round 1 sees an empty history (target stays universe/2, side
        // +1); round 2's context pins the KS witness at v = 100 with the
        // sample over-representing it (side −1), so a stride-1 attack
        // must recompute and flood strictly above 100.
        let universe = 1u64 << 16;
        let mut atk = PrefixMassAttack::new(1, 9);
        let first = atk.next(&AttackContext {
            round: 1,
            n: 10,
            universe,
            sample: &[],
            history: &[],
            oracle: &NullOracle,
        });
        assert!(first <= universe / 2, "round 1 floods below the midpoint");
        let history = vec![1_000u64; 8];
        let sample = vec![100u64];
        let second = atk.next(&AttackContext {
            round: 2,
            n: 10,
            universe,
            sample: &sample,
            history: &history,
            oracle: &NullOracle,
        });
        assert!(
            second > 100,
            "stride-1 attack failed to recompute: emitted {second}"
        );
    }

    #[test]
    fn strategies_report_registry_names() {
        let universe = 1u64 << 16;
        assert_eq!(BisectionAttack::figure3(100, universe).name(), "bisection");
        assert_eq!(ColliderAttack::new(1).name(), "collider");
        assert_eq!(PrefixMassAttack::new(64, 1).name(), "prefix-mass");
        assert_eq!(MedianHuntAttack::new(1).name(), "median-hunt");
        assert_eq!(EvictionPumpAttack::new().name(), "eviction-pump");
    }

    #[test]
    fn every_kth_sampler_is_duel_compatible() {
        // Smoke: deterministic stride samplers expose state too.
        let mut defense = crate::sampler::EveryKthSampler::<u64>::new(7);
        let mut atk = EvictionPumpAttack::new();
        let out = Duel::new(500, 1 << 12).run(&mut defense, &mut atk);
        assert_eq!(out.stream.len(), 500);
        assert_eq!(
            StreamSampler::sample(&defense).len(),
            out.final_sample.len()
        );
    }
}
