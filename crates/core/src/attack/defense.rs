//! [`ObservableDefense`] implementations for the summaries defined in
//! this crate: the samplers, the robust sketches, and the sharded
//! fan-out. (The six baseline sketches implement the trait in the
//! sketches crate; the distributed `Site` in the distributed crate.)

use super::{ObservableDefense, StateOracle};
use crate::engine::{MergeableSummary, QuantileSummary, ShardedSummary};
use crate::sampler::{
    BernoulliSampler, BottomKSampler, EveryKthSampler, ReservoirSampler, StreamSampler,
};
use crate::sketch::{RobustHeavyHitterSketch, RobustQuantileSketch};
use crate::window::ChainSampler;

// ---------------------------------------------------------------------------
// Samplers: the observable state is exactly the sample — the paper's σ_i.
// ---------------------------------------------------------------------------

impl StateOracle for BernoulliSampler<u64> {}

impl ObservableDefense for BernoulliSampler<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self.sample());
    }
}

/// A reservoir answers quantile queries from its sample (it implements
/// [`QuantileSummary`]), and the paper's adversary can run the same
/// computation on the visible state — so the oracle exposes it.
impl StateOracle for ReservoirSampler<u64> {
    fn quantile_estimate(&self, q: f64) -> Option<u64> {
        self.estimate_quantile(q)
    }
}

impl ObservableDefense for ReservoirSampler<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self.sample());
    }
}

impl StateOracle for BottomKSampler<u64> {}

impl ObservableDefense for BottomKSampler<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(StreamSampler::sample(self));
    }
}

impl StateOracle for EveryKthSampler<u64> {}

impl ObservableDefense for EveryKthSampler<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(StreamSampler::sample(self));
    }
}

/// The sliding-window chain sampler duels like any other sampler: its
/// observable state is the per-chain residents (one window sample per
/// chain, with replacement). Judges must score it against the **active
/// window**, not the whole stream — that is its contract (see
/// [`crate::window`] and the `chain-window` row of the attack matrix).
impl StateOracle for ChainSampler<u64> {}

impl ObservableDefense for ChainSampler<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend(self.sample());
    }
}

// ---------------------------------------------------------------------------
// Robust sketches: a theorem-sized reservoir plus query logic; both the
// retained sample and the live answers are observable.
// ---------------------------------------------------------------------------

impl StateOracle for RobustQuantileSketch<u64> {
    fn quantile_estimate(&self, q: f64) -> Option<u64> {
        self.quantile(q)
    }
}

impl ObservableDefense for RobustQuantileSketch<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self.sample());
    }
}

impl StateOracle for RobustHeavyHitterSketch<u64> {
    fn count_estimate(&self, x: u64) -> Option<f64> {
        Some(self.density(&x) * self.observed() as f64)
    }
}

impl ObservableDefense for RobustHeavyHitterSketch<u64> {
    fn visible_into(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self.sample());
    }
}

// ---------------------------------------------------------------------------
// Sharded fan-out: the adversary sees every shard's state (shard order is
// deterministic, so the concatenation is a faithful state digest).
// ---------------------------------------------------------------------------

impl<S> StateOracle for ShardedSummary<S> where S: ObservableDefense {}

impl<S> ObservableDefense for ShardedSummary<S>
where
    S: ObservableDefense + MergeableSummary<u64> + Clone + Send,
{
    fn visible_into(&self, out: &mut Vec<u64>) {
        for shard in self.shards() {
            shard.visible_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{attack, Duel};
    use crate::engine::StreamSummary;

    #[test]
    fn sampler_visible_state_is_the_sample() {
        let mut r = ReservoirSampler::<u64>::with_seed(8, 1);
        for x in 0..100u64 {
            r.ingest(x);
        }
        assert_eq!(r.visible(), r.sample().to_vec());
        let m = StateOracle::quantile_estimate(&r, 0.5);
        assert!(m.is_some());
    }

    #[test]
    fn sharded_defense_exposes_every_shard() {
        let mut sharded =
            ShardedSummary::new(3, 5, |_, seed| ReservoirSampler::<u64>::with_seed(4, seed));
        for x in 0..200u64 {
            sharded.ingest(x);
        }
        let visible = sharded.visible();
        assert_eq!(visible.len(), 12, "3 shards x 4 residents");
        let mut atk = attack("median-hunt").unwrap().build(300, 1 << 12, 2);
        let out = Duel::new(300, 1 << 12).run(&mut sharded, &mut atk);
        assert_eq!(out.stream.len(), 300);
    }

    #[test]
    fn chain_sampler_duels_and_stays_inside_the_window() {
        let w = 64;
        let mut d = ChainSampler::<u64>::with_seed(w, 8, 4);
        let mut atk = attack("median-hunt").unwrap().build(500, 1 << 12, 3);
        let out = Duel::new(500, 1 << 12).run(&mut d, &mut atk);
        assert_eq!(out.stream.len(), 500);
        assert_eq!(out.final_sample.len(), 8);
        // Every visible resident is an element of the active window.
        let window = &out.stream[out.stream.len() - w..];
        assert!(out.final_sample.iter().all(|x| window.contains(x)));
    }

    #[test]
    fn robust_quantile_sketch_answers_the_oracle() {
        let mut s = RobustQuantileSketch::<u64>::with_capacity(64, 0.1, 0.05, 3);
        for x in 0..10_000u64 {
            s.observe(x);
        }
        let med = StateOracle::quantile_estimate(&s, 0.5).unwrap() as f64;
        assert!((med - 5_000.0).abs() < 2_000.0, "median {med}");
        assert!(!s.visible().is_empty());
    }
}
