//! The attack registry: every adversary the harness knows, as data.
//!
//! The adversary-side mirror of
//! [`robust_sampling_streamgen::registry`](mod@robust_sampling_streamgen::registry):
//! an [`AttackSpec`] row is the
//! single place a strategy is described — its CLI/report name, the
//! defense class it targets, the theorem it instantiates, and the
//! builder that constructs it for a given duel shape. The experiment
//! binaries resolve `--attack <name>` here ([`attack`]),
//! `--list-attacks` prints the table, and [`descriptor`] resolves a live
//! strategy back to its row so names exist in exactly one table.

use super::strategies::{
    BisectionAttack, ColliderAttack, EvictionPumpAttack, MedianHuntAttack, PrefixMassAttack,
    ReplayAttack,
};
use super::AttackStrategy;

/// One registered attack: a name, the defense family it targets, the
/// paper linkage, default parameters, and the builder that instantiates
/// it for an `n`-round duel over a given universe at a given seed.
pub struct AttackSpec {
    /// Report/CLI name (`--attack <name>`).
    pub name: &'static str,
    /// The defense class this strategy aims to break, with the paper
    /// result it leans on.
    pub target: &'static str,
    /// Human-readable default parameters.
    pub params: &'static str,
    /// Whether the strategy reads the defense's state (`false` for the
    /// oblivious replay controls).
    pub adaptive: bool,
    builder: fn(n: usize, universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send>,
}

impl std::fmt::Debug for AttackSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackSpec")
            .field("name", &self.name)
            .field("target", &self.target)
            .field("params", &self.params)
            .field("adaptive", &self.adaptive)
            .finish()
    }
}

impl AttackSpec {
    /// Build the strategy for an `n`-round duel over
    /// `{0, …, universe−1}`, deterministically seeded: the same
    /// `(n, universe, seed)` always yields a strategy that plays the
    /// identical game against the identical defense.
    pub fn build(&self, n: usize, universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send> {
        (self.builder)(n, universe, seed)
    }
}

fn build_bisection(n: usize, universe: u64, _seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(BisectionAttack::figure3(n, universe))
}

fn build_collider(_n: usize, _universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(ColliderAttack::new(seed))
}

fn build_prefix_mass(_n: usize, _universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(PrefixMassAttack::new(64, seed))
}

fn build_median_hunt(_n: usize, _universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(MedianHuntAttack::new(seed))
}

fn build_eviction_pump(_n: usize, _universe: u64, _seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(EvictionPumpAttack::new())
}

fn build_replay_uniform(n: usize, universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(ReplayAttack::from_workload(
        "replay-uniform",
        "uniform",
        n,
        universe,
        seed,
    ))
}

fn build_replay_zipf(n: usize, universe: u64, seed: u64) -> Box<dyn AttackStrategy + Send> {
    Box::new(ReplayAttack::from_workload(
        "replay-zipf",
        "zipf",
        n,
        universe,
        seed,
    ))
}

/// The registry table. One row per attack; names are unique.
static REGISTRY: &[AttackSpec] = &[
    AttackSpec {
        name: "bisection",
        target: "samplers via stored/discarded probes (Thm 1.3, Fig. 3)",
        params: "p' = ln n / n; exhausts when ln N < budget (Claim 5.1)",
        adaptive: true,
        builder: build_bisection,
    },
    AttackSpec {
        name: "collider",
        target: "linear sketches via hash-row collisions (HW13 / E13)",
        params: "victim = U + 777777, one decoy per row, 50% duty",
        adaptive: true,
        builder: build_collider,
    },
    AttackSpec {
        name: "prefix-mass",
        target: "prefix systems / continuous game (Thm 1.2/1.4 stress)",
        params: "KS witness recomputed every 64 rounds",
        adaptive: true,
        builder: build_prefix_mass,
    },
    AttackSpec {
        name: "median-hunt",
        target: "quantile summaries via live median queries (Cor 1.5)",
        params: "flood above the defense's current median answer",
        adaptive: true,
        builder: build_median_hunt,
    },
    AttackSpec {
        name: "eviction-pump",
        target: "counter summaries MG/SpaceSaving (saturates det. bounds)",
        params: "victim phase n/5, then distinct-value flood + probes",
        adaptive: true,
        builder: build_eviction_pump,
    },
    AttackSpec {
        name: "replay-uniform",
        target: "none — oblivious control (static setting baseline)",
        params: "registry workload 'uniform'",
        adaptive: false,
        builder: build_replay_uniform,
    },
    AttackSpec {
        name: "replay-zipf",
        target: "none — oblivious control (static setting baseline)",
        params: "registry workload 'zipf' (s = 1.1)",
        adaptive: false,
        builder: build_replay_zipf,
    },
];

/// All registered attacks, in table order.
pub fn registry() -> &'static [AttackSpec] {
    REGISTRY
}

/// Look an attack up by its CLI/report name.
pub fn attack(name: &str) -> Option<&'static AttackSpec> {
    REGISTRY.iter().find(|a| a.name == name)
}

/// The registry row describing a live strategy (resolved by
/// [`AttackStrategy::name`], which every registered strategy reports).
///
/// # Panics
///
/// Panics if the strategy's name is unregistered — a bug, guarded by
/// tests that walk every row.
pub fn descriptor(strategy: &dyn AttackStrategy) -> &'static AttackSpec {
    attack(strategy.name()).expect("every registered strategy reports a registry name")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Duel;
    use crate::sampler::ReservoirSampler;

    #[test]
    fn names_are_unique() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn registry_has_at_least_six_attacks_and_a_control() {
        assert!(REGISTRY.len() >= 6, "only {} attacks", REGISTRY.len());
        assert!(REGISTRY.iter().any(|a| !a.adaptive), "no oblivious control");
        assert!(REGISTRY.iter().any(|a| a.adaptive), "no adaptive attack");
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for a in registry() {
            assert_eq!(attack(a.name).expect("resolves").name, a.name);
        }
        assert!(attack("no-such-attack").is_none());
    }

    #[test]
    fn built_strategies_report_their_registry_name() {
        for spec in registry() {
            let strategy = spec.build(100, 1 << 16, 1);
            assert_eq!(strategy.name(), spec.name);
            assert_eq!(descriptor(&strategy).name, spec.name);
        }
    }

    #[test]
    fn every_registered_attack_is_deterministic_per_seed() {
        let n = 400;
        let universe = 1u64 << 16;
        for spec in registry() {
            let run = || {
                let mut defense = ReservoirSampler::<u64>::with_seed(16, 11);
                let mut atk = spec.build(n, universe, 5);
                Duel::new(n, universe).run(&mut defense, &mut atk).stream
            };
            assert_eq!(run(), run(), "{} is not deterministic", spec.name);
        }
    }
}
