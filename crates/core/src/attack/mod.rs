//! The pluggable attack subsystem: adaptive adversaries as data.
//!
//! This module is the adversary-side mirror of the scenario registry in
//! [`robust_sampling_streamgen::registry`](mod@robust_sampling_streamgen::registry):
//! where a workload is a
//! deterministic, seedable, chunk-pulling [`StreamSource`], an attack is a
//! deterministic, seedable, **state-observing** [`AttackStrategy`] — the
//! paper's adaptive adversary packaged so that experiment harnesses can
//! enumerate, look up, and duel every registered strategy against every
//! [`StreamSummary`] defense.
//!
//! Three layers:
//!
//! * **The strategy interface.** [`AttackStrategy`] chooses round `i`'s
//!   element after observing an [`AttackContext`]: the defense's retained
//!   elements (the paper's state `σ_{i−1}`), its own submission history,
//!   and a [`StateOracle`] exposing richer internals — hash-collision
//!   queries for linear sketches, live quantile/count answers — because
//!   the paper's model hands the adversary the *full* state, not just the
//!   sample.
//! * **The duel loop.** [`Duel`] plays an attack against any
//!   [`ObservableDefense`] (every summary in the workspace implements it:
//!   samplers, robust sketches, the six baselines, sharded and
//!   distributed paths) for `n` rounds, exactly as the Figure 1
//!   `AdaptiveGame` plays an [`Adversary`] against a sampler.
//!   [`AttackAdversary`] bridges the two worlds, so registered attacks
//!   also run inside [`AdaptiveGame`](crate::game::AdaptiveGame) and
//!   [`ContinuousAdaptiveGame`](crate::game::ContinuousAdaptiveGame).
//! * **The registry.** [`AttackSpec`] rows describe every named attack —
//!   what it targets, which theorem it instantiates, its default
//!   parameters — and [`registry()`]/[`attack`]/[`descriptor`] resolve
//!   names exactly the way the workload registry does
//!   (`--attack <name>` / `--list-attacks` in the experiment binaries).
//!
//! The registered strategies live in [`strategies`]; the experiment-side
//! attack × defense evaluation grid is the `attack_matrix` binary in the
//! bench crate.
//!
//! [`StreamSource`]: robust_sampling_streamgen::source::StreamSource
//! [`StreamSummary`]: crate::engine::StreamSummary
//! [`Adversary`]: crate::adversary::Adversary

pub mod registry;
pub mod strategies;

mod defense;

pub use registry::{attack, descriptor, registry, AttackSpec};
pub use strategies::{
    BisectionAttack, ColliderAttack, EvictionPumpAttack, MedianHuntAttack, PrefixMassAttack,
    ReplayAttack,
};

use crate::adversary::{Adversary, RoundContext};
use crate::engine::StreamSummary;

/// Everything an attack observes before choosing round `i`'s element —
/// the duel-loop analogue of [`RoundContext`], generalised from samplers
/// to arbitrary summaries.
#[derive(Clone, Copy)]
pub struct AttackContext<'a> {
    /// Current round `i` (1-based); the returned element becomes `x_i`.
    pub round: usize,
    /// Total number of rounds `n` (the paper's adversary knows `n`).
    pub n: usize,
    /// Upper bound of the element universe `U = {0, …, universe−1}`.
    /// Attacks may submit values `≥ universe` (phantom ids living outside
    /// the nominal universe — the E13 victim trick); defenses must cope.
    pub universe: u64,
    /// The defense's retained elements — the observable state `σ_{i−1}`.
    /// Counter sketches with no retained elements expose an empty slice
    /// (their internals are reachable through [`AttackContext::oracle`]).
    pub sample: &'a [u64],
    /// The elements submitted so far, `x_1, …, x_{i−1}`.
    pub history: &'a [u64],
    /// Full-state queries beyond the retained elements.
    pub oracle: &'a dyn StateOracle,
}

impl std::fmt::Debug for AttackContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackContext")
            .field("round", &self.round)
            .field("n", &self.n)
            .field("universe", &self.universe)
            .field("sample_len", &self.sample.len())
            .field("history_len", &self.history.len())
            .finish()
    }
}

/// Full-state queries a defense answers to the adversary — the paper's
/// model exposes the *entire* internal state `σ_i`, which for hash-based
/// and deterministic summaries means more than a retained-element list.
///
/// Every method defaults to `None` ("this defense has no such state"), so
/// a defense only implements the queries its internals actually support.
pub trait StateOracle {
    /// For hash-based linear sketches (Count-Min): one decoy per hash row
    /// that collides with `target` in that row, searched upward from
    /// `start`. Flooding the decoys inflates the sketch's estimate of
    /// `target` without ever sending it — the Hardt–Woodruff-style attack
    /// of experiment E13.
    fn row_colliders(&self, target: u64, start: u64) -> Option<Vec<u64>> {
        let _ = (target, start);
        None
    }

    /// The defense's current count estimate for `x`, as it would answer a
    /// frequency query right now.
    fn count_estimate(&self, x: u64) -> Option<f64> {
        let _ = x;
        None
    }

    /// The defense's current `q`-quantile answer.
    fn quantile_estimate(&self, q: f64) -> Option<u64> {
        let _ = q;
        None
    }
}

/// The oracle of a defense with no queryable internals (and of the
/// [`AttackAdversary`] bridge, where only the sample is observable).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullOracle;

impl StateOracle for NullOracle {}

/// An adaptive attack: seedable, deterministic per seed, choosing each
/// element after observing the defense's state.
///
/// This is the adversary-side sibling of
/// [`StreamSource`](robust_sampling_streamgen::source::StreamSource) —
/// same determinism law (a strategy rebuilt from the same `(n, universe,
/// seed)` replays identically against the same defense), but each element
/// may depend on everything the defense reveals.
pub trait AttackStrategy {
    /// Choose the next element given the observable state.
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64;

    /// Registry/report name.
    fn name(&self) -> &'static str {
        "attack"
    }
}

/// Boxed strategies pass through, so the registry's
/// `Box<dyn AttackStrategy + Send>` products plug into every generic
/// consumer.
impl<A: AttackStrategy + ?Sized> AttackStrategy for Box<A> {
    fn next(&mut self, ctx: &AttackContext<'_>) -> u64 {
        (**self).next(ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A summary that can be duelled: it ingests elements through
/// [`StreamSummary`] and exposes its adversary-observable state — the
/// retained elements plus any [`StateOracle`] queries its internals
/// support.
///
/// Implemented by every stream-consuming type in the workspace: the
/// samplers and robust sketches here in `core`, the six baselines in the
/// sketches crate, [`ShardedSummary`](crate::engine::ShardedSummary)
/// over any observable shard type, and the distributed `Site`.
pub trait ObservableDefense: StreamSummary<u64> + StateOracle {
    /// Append the retained elements (the observable sample) to `out`.
    /// Counter sketches that retain no elements append nothing.
    fn visible_into(&self, out: &mut Vec<u64>);

    /// The retained elements as an owned `Vec` (convenience).
    fn visible(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.visible_into(&mut out);
        out
    }
}

/// Result of one attack-vs-defense duel.
#[derive(Debug, Clone)]
pub struct DuelOutcome {
    /// The stream `X = (x_1, …, x_n)` the attack produced.
    pub stream: Vec<u64>,
    /// The defense's retained elements after the last round.
    pub final_sample: Vec<u64>,
}

/// The duel loop: `n` rounds of attack-observes-state, defense-ingests —
/// the Figure 1 adaptive game generalised from samplers to every
/// [`ObservableDefense`].
#[derive(Debug, Clone, Copy)]
pub struct Duel {
    n: usize,
    universe: u64,
}

impl Duel {
    /// A duel of `n` rounds over the universe `{0, …, universe−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `universe < 2`.
    pub fn new(n: usize, universe: u64) -> Self {
        assert!(n > 0, "duel length must be positive");
        assert!(universe >= 2, "universe must have at least two elements");
        Self { n, universe }
    }

    /// Number of rounds `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The universe bound.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Play the duel to completion. The defense's state before round `i`
    /// is re-read every round, so the attack sees exactly what the
    /// paper's adversary sees.
    pub fn run<D, A>(&self, defense: &mut D, attack: &mut A) -> DuelOutcome
    where
        D: ObservableDefense,
        A: AttackStrategy + ?Sized,
    {
        self.run_with(defense, attack, |_, _| {})
    }

    /// [`run`](Self::run) with a per-round observer: `on_round(i, x_i)` is
    /// called after the defense ingests round `i`'s element. This is the
    /// hook remote duels use to meter each round — when the defense is a
    /// client speaking to a live service, a round is a full
    /// observe-state/choose/ingest round trip, and the load generator
    /// times the gaps between callbacks to report per-round latency.
    pub fn run_with<D, A>(
        &self,
        defense: &mut D,
        attack: &mut A,
        mut on_round: impl FnMut(usize, u64),
    ) -> DuelOutcome
    where
        D: ObservableDefense,
        A: AttackStrategy + ?Sized,
    {
        let mut stream: Vec<u64> = Vec::with_capacity(self.n);
        let mut visible: Vec<u64> = Vec::new();
        for round in 1..=self.n {
            visible.clear();
            defense.visible_into(&mut visible);
            let x = attack.next(&AttackContext {
                round,
                n: self.n,
                universe: self.universe,
                sample: &visible,
                history: &stream,
                oracle: defense,
            });
            defense.ingest(x);
            stream.push(x);
            on_round(round, x);
        }
        DuelOutcome {
            stream,
            final_sample: defense.visible(),
        }
    }
}

/// Runs a registered [`AttackStrategy`] inside the game layer: the bridge
/// implements [`Adversary<u64>`], mapping each [`RoundContext`] to an
/// [`AttackContext`] (with a [`NullOracle`] — the game's sampler exposes
/// exactly its sample, nothing more). This is how attacks drive
/// [`AdaptiveGame`](crate::game::AdaptiveGame) and
/// [`ContinuousAdaptiveGame`](crate::game::ContinuousAdaptiveGame)
/// unchanged.
#[derive(Debug)]
pub struct AttackAdversary<A> {
    attack: A,
    universe: u64,
}

impl<A: AttackStrategy> AttackAdversary<A> {
    /// Bridge `attack` into the adversary interface over the given
    /// universe bound.
    pub fn new(attack: A, universe: u64) -> Self {
        Self { attack, universe }
    }

    /// The wrapped strategy (e.g. to read attack state after a game).
    pub fn strategy(&self) -> &A {
        &self.attack
    }
}

impl<A: AttackStrategy> Adversary<u64> for AttackAdversary<A> {
    fn next(&mut self, ctx: &RoundContext<'_, u64>) -> u64 {
        self.attack.next(&AttackContext {
            round: ctx.round,
            n: ctx.n,
            universe: self.universe,
            sample: ctx.sample,
            history: ctx.history,
            oracle: &NullOracle,
        })
    }

    fn name(&self) -> &'static str {
        self.attack.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::prefix_discrepancy;
    use crate::game::AdaptiveGame;
    use crate::sampler::ReservoirSampler;

    #[test]
    fn duel_produces_full_stream_and_final_sample() {
        let mut defense = ReservoirSampler::<u64>::with_seed(16, 3);
        let spec = attack("median-hunt").expect("registered");
        let mut atk = spec.build(500, 1 << 16, 7);
        let out = Duel::new(500, 1 << 16).run(&mut defense, &mut atk);
        assert_eq!(out.stream.len(), 500);
        assert_eq!(out.final_sample.len(), 16);
    }

    #[test]
    fn run_with_observes_every_round_and_matches_run() {
        let n = 300;
        let universe = 1u64 << 14;
        let mut d1 = ReservoirSampler::<u64>::with_seed(16, 3);
        let mut a1 = attack("prefix-mass").unwrap().build(n, universe, 7);
        let plain = Duel::new(n, universe).run(&mut d1, &mut a1);
        let mut d2 = ReservoirSampler::<u64>::with_seed(16, 3);
        let mut a2 = attack("prefix-mass").unwrap().build(n, universe, 7);
        let mut seen = Vec::new();
        let traced = Duel::new(n, universe).run_with(&mut d2, &mut a2, |round, x| {
            assert_eq!(round, seen.len() + 1);
            seen.push(x);
        });
        assert_eq!(seen, plain.stream);
        assert_eq!(traced.stream, plain.stream);
        assert_eq!(traced.final_sample, plain.final_sample);
    }

    #[test]
    fn duel_is_deterministic_per_seed() {
        let run = || {
            let mut defense = ReservoirSampler::<u64>::with_seed(32, 9);
            let mut atk = attack("prefix-mass").unwrap().build(800, 1 << 16, 4);
            Duel::new(800, 1 << 16).run(&mut defense, &mut atk).stream
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn attack_adversary_bridges_into_the_game() {
        // The same attack through the Duel loop and through AdaptiveGame
        // (same sampler seed) must produce the identical stream: the
        // bridge is a pure interface adapter. (Uses a sample-only
        // strategy — the game exposes no oracle, so oracle-consulting
        // strategies legitimately play differently there.)
        let n = 600;
        let universe = 1u64 << 16;
        let mut s1 = ReservoirSampler::<u64>::with_seed(16, 5);
        let mut a1 = attack("prefix-mass").unwrap().build(n, universe, 2);
        let duel = Duel::new(n, universe).run(&mut s1, &mut a1);

        let mut s2 = ReservoirSampler::<u64>::with_seed(16, 5);
        let a2 = attack("prefix-mass").unwrap().build(n, universe, 2);
        let mut bridge = AttackAdversary::new(a2, universe);
        let game = AdaptiveGame::new(n).run(&mut s2, &mut bridge);
        assert_eq!(duel.stream, game.stream);
        assert_eq!(duel.final_sample, game.sample);
    }

    #[test]
    fn adaptive_attacks_beat_the_oblivious_control_on_a_small_reservoir() {
        // Aggregate sanity for the whole registry: against an undersized
        // reservoir, the worst adaptive attack induces at least the
        // discrepancy of the oblivious replay control.
        let n = 2_000;
        let universe = 1u64 << 16;
        let mut control: f64 = 0.0;
        let mut adaptive_worst: f64 = 0.0;
        for spec in registry() {
            let mut defense = ReservoirSampler::<u64>::with_seed(8, 1);
            let mut atk = spec.build(n, universe, 3);
            let out = Duel::new(n, universe).run(&mut defense, &mut atk);
            let d = prefix_discrepancy(&out.stream, &out.final_sample).value;
            if spec.adaptive {
                adaptive_worst = adaptive_worst.max(d);
            } else {
                control = control.max(d);
            }
        }
        assert!(
            adaptive_worst >= control,
            "adaptive worst {adaptive_worst} < control {control}"
        );
    }
}
