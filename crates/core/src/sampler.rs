//! Streaming sampling algorithms.
//!
//! This module implements the two samplers the paper analyses —
//! [`BernoulliSampler`] and [`ReservoirSampler`] (Vitter's Algorithm R,
//! exactly the pseudocode in the paper's Section 2) — plus a weighted
//! reservoir sampler ([`WeightedReservoirSampler`], Efraimidis–Spirakis
//! A-Res, discussed in the paper's related-work section) and a deterministic
//! strawman ([`EveryKthSampler`]) used by the experiment harness as a
//! trivially robust but statistically weak baseline.
//!
//! All samplers implement [`StreamSampler`]. The trait deliberately exposes
//! the sampler's full internal state via [`StreamSampler::sample`]: in the
//! paper's adversarial model the adversary observes the state `σ_i` after
//! every round, so hiding it would misrepresent the threat model.
//!
//! Every sampler owns its RNG (a seeded [`StdRng`]) so that games,
//! experiments, and tests are fully deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a sampler did with one incoming element.
///
/// The adversary is allowed to observe this (it is deducible from the state
/// transition `σ_{i-1} → σ_i` anyway); the constructive attacks in
/// [`crate::adversary`] branch on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation<T> {
    /// The element was stored in the sample.
    Stored {
        /// Element evicted to make room, if any (reservoir sampling evicts a
        /// uniformly random resident once the reservoir is full).
        evicted: Option<T>,
    },
    /// The element was not stored.
    Skipped,
}

impl<T> Observation<T> {
    /// Whether the observed element was stored in the sample.
    #[inline]
    pub fn stored(&self) -> bool {
        matches!(self, Observation::Stored { .. })
    }
}

/// A streaming sampling algorithm in the paper's model.
///
/// The sampler receives the stream one element at a time via
/// [`observe`](Self::observe) and maintains a sample (its state `σ_i`).
/// The sample is a *subsequence of the stream*, per the paper's Section 2
/// rule 3.
pub trait StreamSampler<T> {
    /// Process one stream element; returns what happened to it.
    fn observe(&mut self, x: T) -> Observation<T>;

    /// The current sample (the state `σ_i` the adversary observes).
    fn sample(&self) -> &[T];

    /// Number of stream elements observed so far.
    fn observed(&self) -> usize;

    /// Total number of elements ever stored (counting later-evicted ones).
    ///
    /// This is the quantity `k'` in the paper's Theorem 1.3 analysis of the
    /// attack on reservoir sampling.
    fn total_stored(&self) -> usize;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Reset to the initial state, keeping parameters but reseeding the RNG.
    fn reset(&mut self, seed: u64);
}

// ---------------------------------------------------------------------------
// Bernoulli sampling
// ---------------------------------------------------------------------------

/// Bernoulli sampling: stores each incoming element independently with
/// probability `p`.
///
/// For a stream of length `n` the sample size concentrates around `n·p`
/// (Chernoff). Theorem 1.2 of the paper proves this sampler is
/// (ε, δ)-robust whenever `p ≥ 10·(ln|R| + ln(4/δ)) / (ε²n)`; use
/// [`crate::bounds::bernoulli_p_robust`] to compute that threshold.
///
/// ## Implementation: geometric skip-sampling
///
/// Instead of flipping one coin per element, the sampler draws the *gap*
/// until the next stored element directly from the geometric distribution
/// `Pr[G = g] = p(1−p)^g` — one RNG draw per **stored** element. The
/// process is exactly equidistributed with per-element coins (a geometric
/// gap is by definition the waiting time of i.i.d. Bernoulli trials), and
/// because the gap is memoryless the adversary's view is unchanged: given
/// any observed prefix of store/skip outcomes, the conditional law of the
/// next outcome is `Bernoulli(p)` either way. The pending gap is private
/// state that [`StreamSampler::sample`] never exposes.
///
/// The same gap state drives both [`observe`](StreamSampler::observe)
/// (decrement) and the batched [`observe_batch`](Self::observe_batch)
/// (jump), so the two ingestion paths produce **identical samples for
/// identical seeds** — the batched path is a pure optimization.
#[derive(Debug, Clone)]
pub struct BernoulliSampler<T> {
    p: f64,
    /// Cached `ln(1 − p)` — the geometric-gap denominator. Recomputing it
    /// per stored element was one of the two `ln` calls on the batch hot
    /// path; the cached value is bit-identical by determinism of `ln`.
    ln_q: f64,
    sample: Vec<T>,
    observed: usize,
    rng: StdRng,
    /// Elements still to skip before the next store; `None` iff `p == 0`
    /// (nothing is ever stored).
    skip: Option<u64>,
}

/// One geometric gap `⌊ln(1−u)/ln(1−p)⌋` with `u` drawn from `rng`.
///
/// The saturating `f64 → u64` cast is exactly `floor` for finite
/// non-negative quotients and sends the `+inf` tail (u ≈ 1 at tiny `p`)
/// to `u64::MAX` — the same value the old `floor()` + `is_finite()`
/// branch produced, one libm call cheaper. For `p ≥ 1` the gap is 0 and
/// **no randomness is consumed** (callers rely on that for the
/// store-everything fast path).
#[inline]
fn bernoulli_gap(rng: &mut StdRng, p: f64, ln_q: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.random();
    ((1.0 - u).ln() / ln_q) as u64
}

impl<T> BernoulliSampler<T> {
    /// Create a sampler that keeps each element with probability `p`,
    /// seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_seed(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let mut s = Self {
            p,
            ln_q: (1.0 - p).ln(),
            sample: Vec::new(),
            observed: 0,
            rng: StdRng::seed_from_u64(seed),
            skip: None,
        };
        if p > 0.0 {
            s.skip = Some(s.draw_gap());
        }
        s
    }

    /// The sampling probability `p`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Consume the sampler, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.sample
    }

    /// Draw the number of elements to skip before the next store:
    /// `Geometric(p)` on `{0, 1, 2, …}` by inversion.
    fn draw_gap(&mut self) -> u64 {
        bernoulli_gap(&mut self.rng, self.p, self.ln_q)
    }

    /// Weighted ingestion with **multiplicity semantics**: observing
    /// `(x, weight)` is bit-identical — same stored copies, same RNG
    /// stream — to `weight` consecutive [`observe`](StreamSampler::observe)
    /// calls on `x`. Weight 1 *is* the unit kernel; weight 0 consumes
    /// nothing.
    ///
    /// A weight-`w` item spans `w` virtual positions of the expanded
    /// stream, so the pending geometric gap either carries past the whole
    /// span (`skip -= w`, no randomness touched) or lands inside it — then
    /// each landing stores one copy and redraws, exactly one RNG word per
    /// stored copy, in stream order. Returns the number of copies stored.
    pub fn observe_weighted(&mut self, x: T, weight: u64) -> usize
    where
        T: Clone,
    {
        self.observed += weight as usize;
        let Some(mut skip) = self.skip else {
            return 0;
        };
        if self.p >= 1.0 {
            // Every drawn gap is 0 and drawing consumes no randomness:
            // after any pending skip runs out, every remaining copy is
            // stored.
            if skip >= weight {
                self.skip = Some(skip - weight);
                return 0;
            }
            let copies = (weight - skip) as usize;
            self.sample.extend((0..copies).map(|_| x.clone()));
            self.skip = Some(0);
            return copies;
        }
        let mut rem = weight;
        let mut stored = 0usize;
        while skip < rem {
            rem -= skip + 1;
            self.sample.push(x.clone());
            stored += 1;
            skip = bernoulli_gap(&mut self.rng, self.p, self.ln_q);
        }
        self.skip = Some(skip - rem);
        stored
    }

    /// Batched weighted ingestion: state-for-state equivalent to calling
    /// [`observe_weighted`](Self::observe_weighted) on each pair in order
    /// (which is itself equivalent to the fully expanded unit stream).
    pub fn observe_weighted_batch(&mut self, xs: &[(T, u64)])
    where
        T: Clone,
    {
        for (x, w) in xs {
            self.observe_weighted(x.clone(), *w);
        }
    }

    /// Merge another Bernoulli sampler of the **same rate** into this one.
    ///
    /// The union of independent Bernoulli(`p`) samples of disjoint
    /// substreams is exactly a Bernoulli(`p`) sample of the concatenated
    /// stream, so the merge is sound with *no* error growth: samples
    /// concatenate, counts add. `self` keeps its own RNG and pending gap,
    /// so streaming may continue after the merge (the geometric gap is
    /// memoryless).
    ///
    /// # Panics
    ///
    /// Panics if the two samplers have different rates `p`.
    pub fn merge(&mut self, mut other: Self) {
        assert!(
            self.p == other.p,
            "cannot merge Bernoulli samplers of different rates ({} vs {})",
            self.p,
            other.p
        );
        self.observed += other.observed;
        self.sample.append(&mut other.sample);
    }

    /// Batched ingestion: skip-jump through `xs` storing the same elements
    /// (given the same seed and history) that per-element
    /// [`observe`](StreamSampler::observe) calls would store, in
    /// `O(p·|xs|)` expected work instead of `Θ(|xs|)`.
    pub fn observe_batch(&mut self, xs: &[T])
    where
        T: Clone,
    {
        let n = xs.len();
        self.observed += n;
        let Some(mut skip) = self.skip else {
            return;
        };
        if self.p >= 1.0 {
            // Every drawn gap is 0 and drawing one consumes no
            // randomness: after any pending skip runs out, storing the
            // rest of the batch is a single slice copy.
            if skip >= n as u64 {
                self.skip = Some(skip - n as u64);
            } else {
                self.sample.extend_from_slice(&xs[skip as usize..]);
                self.skip = Some(0);
            }
            return;
        }
        // One reservation sized to the expected p·n stores (+4σ slack)
        // instead of amortized doubling mid-loop.
        let expect = self.p * n as f64;
        self.sample
            .reserve((expect + 4.0 * expect.sqrt()) as usize + 1);
        // Software-pipelined hot loop on local copies of the RNG and gap
        // so the compiler can keep them in registers. Each iteration
        // copies one confirmed store and draws the *next* gap; the gap's
        // `ln` depends only on the RNG recurrence — never on loaded data —
        // so the strided `xs` read overlaps the FPU work, and consecutive
        // iterations' `ln` calls pipeline. Exactly one RNG word is
        // consumed per stored element, in stream order — identical to the
        // element-wise path.
        let (p, ln_q) = (self.p, self.ln_q);
        let mut rng = self.rng.clone();
        if skip < n as u64 {
            let mut pos = skip as usize;
            loop {
                skip = bernoulli_gap(&mut rng, p, ln_q);
                self.sample.push(xs[pos].clone());
                // Elements of this batch after `pos`; the new gap either
                // lands in them or carries past the batch end.
                let after = (n - pos - 1) as u64;
                if skip >= after {
                    skip -= after;
                    break;
                }
                pos += 1 + skip as usize;
            }
        } else {
            skip -= n as u64;
        }
        self.rng = rng;
        self.skip = Some(skip);
    }
}

impl<T: Clone> StreamSampler<T> for BernoulliSampler<T> {
    fn observe(&mut self, x: T) -> Observation<T> {
        self.observed += 1;
        match self.skip {
            None => Observation::Skipped,
            Some(0) => {
                self.sample.push(x);
                self.skip = Some(self.draw_gap());
                Observation::Stored { evicted: None }
            }
            Some(s) => {
                self.skip = Some(s - 1);
                Observation::Skipped
            }
        }
    }

    #[inline]
    fn sample(&self) -> &[T] {
        &self.sample
    }

    #[inline]
    fn observed(&self) -> usize {
        self.observed
    }

    #[inline]
    fn total_stored(&self) -> usize {
        self.sample.len()
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }

    fn reset(&mut self, seed: u64) {
        self.sample.clear();
        self.observed = 0;
        self.rng = StdRng::seed_from_u64(seed);
        self.skip = if self.p > 0.0 {
            Some(self.draw_gap())
        } else {
            None
        };
    }
}

// ---------------------------------------------------------------------------
// Reservoir sampling
// ---------------------------------------------------------------------------

/// One Algorithm L acceptance gap `⌊ln u / ln(1−w)⌋` with `u` drawn from
/// `rng`.
///
/// As in [`bernoulli_gap`], the saturating `f64 → u64` cast replaces the
/// old `floor()` + `is_finite()` branch value-for-value (the quotient is
/// never NaN: `u > 0` so `ln u` is finite, and `denom < 0` excludes
/// `0/0`). When `w` has underflowed to 0 the threshold is gone and no
/// future element is ever accepted — but the uniform is still drawn
/// first, matching the original RNG consumption order.
#[inline]
fn algo_l_gap(rng: &mut StdRng, w: f64) -> u64 {
    let u2: f64 = rng.random();
    let denom = (1.0 - w).ln();
    if denom < 0.0 {
        (u2.ln() / denom) as u64
    } else {
        u64::MAX
    }
}

/// Classical reservoir sampling (the paper's Section 2 algorithm: store
/// element `i > k` with probability `k/i`, evicting a uniformly random
/// resident), maintaining a uniform sample of fixed size `k`.
///
/// Theorem 1.2 proves (ε, δ)-robustness for
/// `k ≥ 2·(ln|R| + ln(2/δ)) / ε²`; use
/// [`crate::bounds::reservoir_k_robust`].
///
/// ## Implementation: Vitter-style gap skipping (Li's Algorithm L)
///
/// Acceptance at index `i` with probability `k/i`, independently per
/// index, is exactly the acceptance process of bottom-`k` sampling (the
/// relative rank of element `i` among the first `i` is uniform and
/// independent across `i`). Algorithm L samples the *gaps* between
/// acceptances of that process directly — a running threshold
/// `W ← W·U^{1/k}` and a geometric jump `⌊ln U / ln(1−W)⌋` — using
/// `O(1)` RNG draws per **stored** element, i.e. `O(k·ln(n/k))` draws for
/// the whole stream instead of `n`.
///
/// The pre-drawn gap is private state the adversary never sees, and by
/// the independence above the conditional law of the next accept/skip
/// decision given everything observable is `k/i` either way — games and
/// attacks behave exactly as under per-element coins. The same gap state
/// drives [`observe`](StreamSampler::observe) (decrement) and
/// [`observe_batch`](Self::observe_batch) (jump), so batched and
/// element-wise ingestion produce **identical reservoirs for identical
/// seeds**.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    k: usize,
    reservoir: Vec<T>,
    observed: usize,
    total_stored: usize,
    rng: StdRng,
    /// Algorithm L threshold; meaningful once the reservoir is full.
    w: f64,
    /// Elements still to skip before the next store (once full).
    skip: u64,
}

impl<T> ReservoirSampler<T> {
    /// Create a reservoir of capacity `k`, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k > 0, "reservoir capacity must be positive");
        Self {
            k,
            reservoir: Vec::with_capacity(k),
            observed: 0,
            total_stored: 0,
            rng: StdRng::seed_from_u64(seed),
            w: 1.0,
            skip: 0,
        }
    }

    /// The reservoir capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Consume the sampler, returning the reservoir contents.
    pub fn into_sample(self) -> Vec<T> {
        self.reservoir
    }

    /// Advance the Algorithm L state: shrink the threshold and draw the
    /// gap until the next acceptance.
    fn next_gap(&mut self) {
        let u1: f64 = self.rng.random();
        self.w *= (u1.ln() / self.k as f64).exp();
        self.draw_skip();
    }

    /// Draw the gap until the next acceptance from the current threshold
    /// `w`: geometric with per-element acceptance probability `w`.
    fn draw_skip(&mut self) {
        self.skip = algo_l_gap(&mut self.rng, self.w);
    }

    /// Re-draw the Algorithm L threshold as if this (full) reservoir had
    /// just finished a stream of `n` elements: in the bottom-k view the
    /// threshold is the `k`-th smallest of `n` i.i.d. uniform keys, drawn
    /// here by the ascending order-statistic recursion (`k` RNG draws),
    /// then a fresh acceptance gap from it. Called after a merge so that
    /// streaming may continue with the correct acceptance law `k/i`.
    fn reseed_threshold(&mut self, n: usize) {
        debug_assert!(n >= self.k);
        let mut w = 0.0f64;
        for j in 0..self.k {
            let u: f64 = self.rng.random();
            // Smallest of the (n - j) remaining uniforms above w, rescaled
            // into (w, 1): w + (1-w)·(1 - (1-u)^{1/(n-j)}).
            w += (1.0 - w) * (1.0 - (1.0 - u).powf(1.0 / (n - j) as f64));
        }
        self.w = w.clamp(0.0, 1.0);
        self.draw_skip();
    }

    /// Merge another reservoir into this one: the result is distributed as
    /// one reservoir of capacity `self.k` run over the concatenation of
    /// both streams.
    ///
    /// The merge draws the per-stream split of the output exactly
    /// (sequential sampling without replacement from the union, i.e. the
    /// hypergeometric law), then takes a uniform subset of each input
    /// reservoir of that size — sound because a uniform `j`-subset of a
    /// uniform `k`-sample of a stream is a uniform `j`-subset of the
    /// stream itself. Afterwards the Algorithm L threshold is re-drawn
    /// for the combined length (see `reseed_threshold`'s comment), so
    /// the merged sampler can keep ingesting.
    ///
    /// All randomness comes from `self`'s RNG: merges are deterministic
    /// per seed. [`total_stored`](StreamSampler::total_stored) becomes the
    /// sum of both sides' churn. The merged capacity is `self.k`.
    ///
    /// # Panics
    ///
    /// Panics if `other` has subsampled its stream (is full) with a
    /// capacity smaller than `self.k` — the split could then demand more
    /// elements than `other` retains. Equal capacities (the sharded
    /// deployment) always work, as does merging in a partial reservoir of
    /// any capacity.
    pub fn merge(&mut self, mut other: Self)
    where
        T: Clone,
    {
        assert!(
            other.observed <= other.reservoir.len() || other.k >= self.k,
            "cannot merge a full reservoir of smaller capacity ({} < {})",
            other.k,
            self.k
        );
        let n_total = self.observed + other.observed;
        self.total_stored += other.total_stored;
        // How many of the merged sample's slots come from each side:
        // sequential without-replacement draws from the union.
        let k_out = self.k.min(n_total);
        let (mut rem_a, mut rem_b) = (self.observed as u64, other.observed as u64);
        let mut take_a = 0usize;
        for _ in 0..k_out {
            if self.rng.random_range(0..rem_a + rem_b) < rem_a {
                take_a += 1;
                rem_a -= 1;
            } else {
                rem_b -= 1;
            }
        }
        let take_b = k_out - take_a;
        // Uniform subsets of each reservoir via partial Fisher–Yates.
        let mut merged = Vec::with_capacity(k_out);
        for (pool, take) in [
            (&mut self.reservoir, take_a),
            (&mut other.reservoir, take_b),
        ] {
            debug_assert!(take <= pool.len());
            for i in 0..take {
                let j = self.rng.random_range(i..pool.len());
                pool.swap(i, j);
            }
            merged.extend(pool.drain(..take));
        }
        self.reservoir = merged;
        self.observed = n_total;
        if self.reservoir.len() == self.k && n_total > self.k {
            self.reseed_threshold(n_total);
        } else if self.reservoir.len() == self.k {
            // Exactly full with the whole union: behave like a freshly
            // filled reservoir.
            self.w = 1.0;
            self.next_gap();
        }
    }

    /// Weighted ingestion with **multiplicity semantics**: observing
    /// `(x, weight)` is bit-identical — same reservoir, same RNG stream —
    /// to `weight` consecutive [`observe`](StreamSampler::observe) calls
    /// on `x`. Weight 1 *is* the unit kernel; weight 0 consumes nothing.
    ///
    /// Fill-phase copies are pushed unconditionally (no randomness); once
    /// full, the Algorithm L gap either carries past the remaining span
    /// (`skip -= rem`) or lands in it, and each landing consumes exactly
    /// the element-wise three RNG words (slot, threshold decay, next gap).
    /// Returns the number of copies stored.
    pub fn observe_weighted(&mut self, x: T, weight: u64) -> usize
    where
        T: Clone,
    {
        let mut rem = weight;
        let mut stored = 0usize;
        while rem > 0 && self.reservoir.len() < self.k {
            self.reservoir.push(x.clone());
            self.total_stored += 1;
            self.observed += 1;
            stored += 1;
            rem -= 1;
            if self.reservoir.len() == self.k {
                self.w = 1.0;
                self.next_gap();
            }
        }
        if rem == 0 {
            return stored;
        }
        self.observed += rem as usize;
        while self.skip < rem {
            rem -= self.skip + 1;
            let j = self.rng.random_range(0..self.k);
            self.reservoir[j] = x.clone();
            self.total_stored += 1;
            stored += 1;
            self.next_gap();
        }
        self.skip -= rem;
        stored
    }

    /// Batched weighted ingestion: state-for-state equivalent to calling
    /// [`observe_weighted`](Self::observe_weighted) on each pair in order
    /// (which is itself equivalent to the fully expanded unit stream).
    pub fn observe_weighted_batch(&mut self, xs: &[(T, u64)])
    where
        T: Clone,
    {
        for (x, w) in xs {
            self.observe_weighted(x.clone(), *w);
        }
    }

    /// Accept `x` into a full reservoir, evicting a uniform resident.
    fn accept(&mut self, x: T) -> T {
        let j = self.rng.random_range(0..self.k);
        let evicted = std::mem::replace(&mut self.reservoir[j], x);
        self.total_stored += 1;
        self.next_gap();
        evicted
    }

    /// Batched ingestion: jump the Algorithm L gaps through `xs`, storing
    /// the same elements (given the same seed and history) that
    /// per-element [`observe`](StreamSampler::observe) calls would store,
    /// in `O(k·ln(|xs|/k))` expected work instead of `Θ(|xs|)`.
    pub fn observe_batch(&mut self, xs: &[T])
    where
        T: Clone,
    {
        let mut i = 0usize;
        let n = xs.len();
        // Fill phase: the first k elements are stored unconditionally and
        // consume no randomness, so the fill is a single slice copy.
        if self.reservoir.len() < self.k {
            let take = (self.k - self.reservoir.len()).min(n);
            self.reservoir.extend_from_slice(&xs[..take]);
            self.total_stored += take;
            self.observed += take;
            i = take;
            if self.reservoir.len() == self.k {
                self.w = 1.0;
                self.next_gap();
            }
            if i >= n {
                return;
            }
        }
        // Skip phase, on local copies of the Algorithm L state (RNG,
        // threshold, gap, counters) so the compiler can keep them in
        // registers across reservoir writes. Each store consumes exactly
        // three RNG words — the slot `j`, then `u1` (threshold decay),
        // then `u2` (next gap) — identical to the element-wise path. The
        // loop is software-pipelined: none of the per-store draws depend
        // on loaded data, and the only loop-carried recurrences are the
        // cheap threshold multiply and the position walk, so the four
        // transcendental calls per store pipeline across iterations and
        // the strided `xs` read overlaps them. (Probe-measured, removing
        // the read entirely does not speed this loop up: it runs at FPU
        // throughput.)
        let k = self.k;
        let kf = k as f64;
        let mut rng = self.rng.clone();
        let mut w = self.w;
        let mut skip = self.skip;
        let mut total_stored = self.total_stored;
        self.observed += n - i;
        let reservoir = &mut self.reservoir[..];
        if skip < (n - i) as u64 {
            let mut pos = i + skip as usize;
            loop {
                let slot: usize = rng.random_range(0..k);
                let u1: f64 = rng.random();
                w *= (u1.ln() / kf).exp();
                let u2: f64 = rng.random();
                let denom = (1.0 - w).ln();
                reservoir[slot] = xs[pos].clone();
                total_stored += 1;
                skip = if denom < 0.0 {
                    (u2.ln() / denom) as u64
                } else {
                    u64::MAX
                };
                // Elements of this batch after `pos`; the new gap either
                // lands in them or carries past the batch end.
                let after = (n - pos - 1) as u64;
                if skip >= after {
                    skip -= after;
                    break;
                }
                pos += 1 + skip as usize;
            }
        } else {
            skip -= (n - i) as u64;
        }
        self.rng = rng;
        self.w = w;
        self.skip = skip;
        self.total_stored = total_stored;
    }
}

impl<T: Clone> StreamSampler<T> for ReservoirSampler<T> {
    fn observe(&mut self, x: T) -> Observation<T> {
        self.observed += 1;
        if self.reservoir.len() < self.k {
            self.reservoir.push(x);
            self.total_stored += 1;
            if self.reservoir.len() == self.k {
                self.w = 1.0;
                self.next_gap();
            }
            return Observation::Stored { evicted: None };
        }
        if self.skip > 0 {
            self.skip -= 1;
            return Observation::Skipped;
        }
        let evicted = self.accept(x);
        Observation::Stored {
            evicted: Some(evicted),
        }
    }

    #[inline]
    fn sample(&self) -> &[T] {
        &self.reservoir
    }

    #[inline]
    fn observed(&self) -> usize {
        self.observed
    }

    #[inline]
    fn total_stored(&self) -> usize {
        self.total_stored
    }

    fn name(&self) -> &'static str {
        "reservoir"
    }

    fn reset(&mut self, seed: u64) {
        self.reservoir.clear();
        self.observed = 0;
        self.total_stored = 0;
        self.rng = StdRng::seed_from_u64(seed);
        self.w = 1.0;
        self.skip = 0;
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore (SnapshotCodec) for the two paper samplers
// ---------------------------------------------------------------------------

use crate::engine::snapshot::{
    put_f64, put_u64, put_u64_seq, put_usize, SnapshotCodec, SnapshotError, SnapshotReader,
};

/// Full-state checkpoint: rate, counts, sample, pending geometric gap,
/// and raw RNG words — a restored sampler continues the identical
/// store/skip stream.
impl SnapshotCodec for BernoulliSampler<u64> {
    fn save_into(&self, out: &mut Vec<u8>) {
        put_f64(out, self.p);
        put_usize(out, self.observed);
        put_u64_seq(out, &self.sample);
        match self.skip {
            Some(s) => {
                put_u64(out, 1);
                put_u64(out, s);
            }
            None => {
                put_u64(out, 0);
                put_u64(out, 0);
            }
        }
        for w in self.rng.state() {
            put_u64(out, w);
        }
    }

    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let p = r.f64()?;
        if !(0.0..=1.0).contains(&p) {
            return Err(SnapshotError::Corrupt("bernoulli rate outside [0,1]"));
        }
        let observed = r.usize()?;
        let sample = r.u64_seq()?;
        let has_skip = r.u64()?;
        let skip_val = r.u64()?;
        let skip = match has_skip {
            0 => None,
            1 => Some(skip_val),
            _ => return Err(SnapshotError::Corrupt("bernoulli skip flag")),
        };
        if skip.is_none() && p > 0.0 {
            return Err(SnapshotError::Corrupt("bernoulli gap missing at p > 0"));
        }
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        Ok(Self {
            p,
            ln_q: (1.0 - p).ln(),
            sample,
            observed,
            rng: StdRng::from_state(state),
            skip,
        })
    }
}

/// Full-state checkpoint: capacity, counts, reservoir, Algorithm L
/// threshold + pending gap, and raw RNG words — a restored reservoir
/// continues the identical acceptance stream.
impl SnapshotCodec for ReservoirSampler<u64> {
    fn save_into(&self, out: &mut Vec<u8>) {
        put_usize(out, self.k);
        put_usize(out, self.observed);
        put_usize(out, self.total_stored);
        put_u64_seq(out, &self.reservoir);
        put_f64(out, self.w);
        put_u64(out, self.skip);
        for w in self.rng.state() {
            put_u64(out, w);
        }
    }

    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("reservoir capacity zero"));
        }
        let observed = r.usize()?;
        let total_stored = r.usize()?;
        let reservoir = r.u64_seq()?;
        if reservoir.len() > k {
            return Err(SnapshotError::Corrupt("reservoir overfull"));
        }
        let w = r.f64()?;
        let skip = r.u64()?;
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        Ok(Self {
            k,
            reservoir,
            observed,
            total_stored,
            rng: StdRng::from_state(state),
            w,
            skip,
        })
    }
}

// ---------------------------------------------------------------------------
// Weighted reservoir sampling (Efraimidis–Spirakis A-Res)
// ---------------------------------------------------------------------------

/// Weighted reservoir sampling without replacement (Efraimidis–Spirakis
/// "A-Res"): each element carries a weight `w > 0`, and the probability of
/// inclusion is proportional to the weight.
///
/// Each element receives a key `u^(1/w)` with `u ~ Uniform(0,1)`; the
/// sampler keeps the `k` elements with the largest keys. The unweighted
/// case (`w ≡ 1`) is distributionally equivalent to [`ReservoirSampler`].
/// This variant is exercised by the experiment harness to show that the
/// robustness phenomenology extends to the weighted flavour discussed in
/// the paper's related-work section.
#[derive(Debug)]
pub struct WeightedReservoirSampler<T> {
    k: usize,
    /// `(key, element)` pairs; the entry with the *smallest* key sits at
    /// index `min_idx` so replacement is O(k) worst case but O(1) amortised
    /// for random streams. For the reservoir sizes the theory prescribes
    /// (hundreds to thousands) a linear scan is faster than heap churn.
    entries: Vec<(f64, T)>,
    min_idx: usize,
    observed: usize,
    total_stored: usize,
    rng: StdRng,
}

impl<T> WeightedReservoirSampler<T> {
    /// Create a weighted reservoir of capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k > 0, "reservoir capacity must be positive");
        Self {
            k,
            entries: Vec::with_capacity(k),
            min_idx: 0,
            observed: 0,
            total_stored: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Observe an element with the given positive weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn observe_weighted(&mut self, x: T, weight: f64) -> Observation<T>
    where
        T: Clone,
    {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive and finite, got {weight}"
        );
        self.observed += 1;
        let u: f64 = self.rng.random();
        // Key u^(1/w); computed in log-space for numerical stability with
        // extreme weights.
        let key = (u.ln() / weight).exp();
        if self.entries.len() < self.k {
            self.entries.push((key, x));
            self.total_stored += 1;
            self.recompute_min();
            return Observation::Stored { evicted: None };
        }
        let (min_key, _) = self.entries[self.min_idx];
        if key > min_key {
            let (_, old) = std::mem::replace(&mut self.entries[self.min_idx], (key, x));
            self.total_stored += 1;
            self.recompute_min();
            Observation::Stored { evicted: Some(old) }
        } else {
            Observation::Skipped
        }
    }

    fn recompute_min(&mut self) {
        let mut idx = 0;
        let mut best = f64::INFINITY;
        for (i, (key, _)) in self.entries.iter().enumerate() {
            if *key < best {
                best = *key;
                idx = i;
            }
        }
        self.min_idx = idx;
    }

    /// Current sample as `(element, key)` pairs are internal; this exposes
    /// the elements only, in arbitrary order.
    pub fn sample_elements(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.entries.iter().map(|(_, x)| x.clone()).collect()
    }

    /// Reservoir capacity.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of elements observed.
    #[inline]
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Total number of insertions (including later-evicted entries).
    #[inline]
    pub fn total_stored(&self) -> usize {
        self.total_stored
    }
}

// ---------------------------------------------------------------------------
// Bottom-k (priority / min-wise) sampling
// ---------------------------------------------------------------------------

/// Bottom-k sampling: each element receives an i.i.d. `Uniform(0,1)` key
/// and the sampler keeps the `k` elements with the *smallest* keys.
///
/// Distributionally this is a uniform size-`k` sample without replacement,
/// identical in marginals to [`ReservoirSampler`] — but its *state* is
/// richer: the adversary also sees the residents' keys, including the
/// current threshold (the k-th smallest key). Exposing more state can only
/// help the adversary, yet Theorem 1.2's proof never uses state secrecy —
/// only the independence of the *next* coin from the past — so the same
/// `k = 2(ln|R| + ln(2/δ))/ε²` bound applies. The test suite and the
/// experiment harness exercise this sampler as an "extra-transparent"
/// reservoir variant (bottom-k is also the standard building block for
/// distributed and weighted sampling, per the paper's related work).
#[derive(Debug, Clone)]
pub struct BottomKSampler<T> {
    k: usize,
    /// Resident keys; `elements[i]` carries the element for `keys[i]`.
    /// The entry with the largest key is the eviction candidate (`max_idx`).
    keys: Vec<f64>,
    elements: Vec<T>,
    max_idx: usize,
    observed: usize,
    total_stored: usize,
    rng: StdRng,
}

impl<T> BottomKSampler<T> {
    /// Create a bottom-k sampler of capacity `k`, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k > 0, "sample capacity must be positive");
        Self {
            k,
            keys: Vec::with_capacity(k),
            elements: Vec::with_capacity(k),
            max_idx: 0,
            observed: 0,
            total_stored: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current inclusion threshold: the largest resident key (new
    /// elements enter iff their key is below it once the sample is full).
    /// Part of the state the adversary may observe.
    pub fn threshold(&self) -> Option<f64> {
        if self.keys.len() < self.k {
            return None;
        }
        Some(self.keys[self.max_idx])
    }

    /// Resident keys, parallel to [`StreamSampler::sample`] (full state
    /// exposure — strictly more than a reservoir reveals).
    pub fn keys(&self) -> &[f64] {
        &self.keys
    }

    fn recompute_max(&mut self) {
        let mut idx = 0;
        let mut best = f64::NEG_INFINITY;
        for (i, &key) in self.keys.iter().enumerate() {
            if key > best {
                best = key;
                idx = i;
            }
        }
        self.max_idx = idx;
    }

    /// Merge another bottom-k sampler into this one — **exactly**: keys
    /// are i.i.d. uniform across both samplers, so keeping the `self.k`
    /// smallest keys of the union is precisely the bottom-k sample of the
    /// concatenated stream. No randomness is consumed and no error is
    /// introduced; streaming may continue afterwards.
    pub fn merge(&mut self, other: Self) {
        self.observed += other.observed;
        self.total_stored += other.total_stored;
        for (key, x) in other.keys.into_iter().zip(other.elements) {
            if self.keys.len() < self.k {
                self.keys.push(key);
                self.elements.push(x);
                self.recompute_max();
            } else if key < self.keys[self.max_idx] {
                self.keys[self.max_idx] = key;
                self.elements[self.max_idx] = x;
                self.recompute_max();
            }
        }
    }
}

impl<T: Clone> StreamSampler<T> for BottomKSampler<T> {
    fn observe(&mut self, x: T) -> Observation<T> {
        self.observed += 1;
        let key: f64 = self.rng.random();
        if self.keys.len() < self.k {
            self.keys.push(key);
            self.elements.push(x);
            self.total_stored += 1;
            self.recompute_max();
            return Observation::Stored { evicted: None };
        }
        if key < self.keys[self.max_idx] {
            self.keys[self.max_idx] = key;
            let old = std::mem::replace(&mut self.elements[self.max_idx], x);
            self.total_stored += 1;
            self.recompute_max();
            Observation::Stored { evicted: Some(old) }
        } else {
            Observation::Skipped
        }
    }

    fn sample(&self) -> &[T] {
        &self.elements
    }

    fn observed(&self) -> usize {
        self.observed
    }

    fn total_stored(&self) -> usize {
        self.total_stored
    }

    fn name(&self) -> &'static str {
        "bottom-k"
    }

    fn reset(&mut self, seed: u64) {
        self.keys.clear();
        self.elements.clear();
        self.max_idx = 0;
        self.observed = 0;
        self.total_stored = 0;
        self.rng = StdRng::seed_from_u64(seed);
    }
}

// ---------------------------------------------------------------------------
// Deterministic strawman
// ---------------------------------------------------------------------------

/// Deterministic systematic sampler: keeps every `k`-th element.
///
/// The paper notes any deterministic static algorithm is automatically
/// robust, but may be statistically much weaker; this sampler gives the
/// experiment harness a concrete such comparator. Against *sorted* or
/// periodic streams its sample can be maximally unrepresentative for
/// interval systems, which experiment E3 demonstrates.
#[derive(Debug, Clone)]
pub struct EveryKthSampler<T> {
    stride: usize,
    sample: Vec<T>,
    observed: usize,
}

impl<T> EveryKthSampler<T> {
    /// Keep elements at positions `stride, 2·stride, …` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            stride,
            sample: Vec::new(),
            observed: 0,
        }
    }

    /// Batched ingestion: stride arithmetic instead of a per-element
    /// divisibility check; identical sample to element-wise observation.
    pub fn observe_batch(&mut self, xs: &[T])
    where
        T: Clone,
    {
        let n = xs.len();
        // First kept position (1-based, relative to the batch start).
        let mut next = self.stride - self.observed % self.stride;
        while next <= n {
            self.sample.push(xs[next - 1].clone());
            next += self.stride;
        }
        self.observed += n;
    }
}

impl<T: Clone> StreamSampler<T> for EveryKthSampler<T> {
    fn observe(&mut self, x: T) -> Observation<T> {
        self.observed += 1;
        if self.observed.is_multiple_of(self.stride) {
            self.sample.push(x);
            Observation::Stored { evicted: None }
        } else {
            Observation::Skipped
        }
    }

    fn sample(&self) -> &[T] {
        &self.sample
    }

    fn observed(&self) -> usize {
        self.observed
    }

    fn total_stored(&self) -> usize {
        self.sample.len()
    }

    fn name(&self) -> &'static str {
        "every-kth"
    }

    fn reset(&mut self, _seed: u64) {
        self.sample.clear();
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_p_zero_samples_nothing() {
        let mut s = BernoulliSampler::with_seed(0.0, 1);
        for x in 0..1000u64 {
            assert_eq!(s.observe(x), Observation::Skipped);
        }
        assert!(s.sample().is_empty());
        assert_eq!(s.observed(), 1000);
    }

    #[test]
    fn bernoulli_p_one_samples_everything() {
        let mut s = BernoulliSampler::with_seed(1.0, 1);
        for x in 0..100u64 {
            assert!(s.observe(x).stored());
        }
        assert_eq!(s.sample(), (0..100u64).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn bernoulli_sample_size_concentrates() {
        // E[|S|] = np = 10_000 * 0.2 = 2000; Chernoff keeps us within ±10%
        // with overwhelming probability for this seed.
        let mut s = BernoulliSampler::with_seed(0.2, 42);
        for x in 0..10_000u64 {
            s.observe(x);
        }
        let size = s.sample().len();
        assert!((1800..=2200).contains(&size), "size {size} out of range");
    }

    #[test]
    fn bernoulli_sample_is_subsequence() {
        let mut s = BernoulliSampler::with_seed(0.5, 3);
        let stream: Vec<u64> = (0..500).collect();
        for &x in &stream {
            s.observe(x);
        }
        // Subsequence of an increasing stream must itself be increasing.
        assert!(s.sample().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn bernoulli_rejects_bad_p() {
        let _ = BernoulliSampler::<u64>::with_seed(1.5, 0);
    }

    #[test]
    fn reservoir_keeps_first_k_unconditionally() {
        let mut s = ReservoirSampler::with_seed(10, 7);
        for x in 0..10u64 {
            assert!(s.observe(x).stored());
        }
        let mut got = s.sample().to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_size_is_exactly_k() {
        let mut s = ReservoirSampler::with_seed(50, 9);
        for x in 0..5000u64 {
            s.observe(x);
        }
        assert_eq!(s.sample().len(), 50);
        assert_eq!(s.observed(), 5000);
    }

    #[test]
    fn reservoir_eviction_reports_resident() {
        let mut s = ReservoirSampler::with_seed(1, 11);
        assert_eq!(s.observe(100u64), Observation::Stored { evicted: None });
        // With k=1 every subsequent store must evict the single resident.
        for x in 0..200u64 {
            if let Observation::Stored { evicted } = s.observe(x) {
                assert!(evicted.is_some());
            }
        }
    }

    #[test]
    fn reservoir_uniformity_chi_square() {
        // Each element of a stream of n=100 should appear in a k=10 reservoir
        // with probability k/n = 0.1. Run many trials and check the empirical
        // inclusion frequency of a few positions.
        let n = 100u64;
        let k = 10;
        let trials = 2000;
        let mut counts = vec![0u32; n as usize];
        for t in 0..trials {
            let mut s = ReservoirSampler::with_seed(k, t);
            for x in 0..n {
                s.observe(x);
            }
            for &x in s.sample() {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 200
        for (pos, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.30,
                "position {pos} inclusion frequency {c} deviates {dev:.2} from {expected}"
            );
        }
    }

    #[test]
    fn reservoir_total_stored_grows_like_k_ln_n() {
        // E[k'] = k + sum_{i>k} k/i ≈ k(1 + ln(n/k)).
        let k = 20;
        let n = 20_000u64;
        let mut s = ReservoirSampler::with_seed(k, 5);
        for x in 0..n {
            s.observe(x);
        }
        let expect = k as f64 * (1.0 + (n as f64 / k as f64).ln());
        let got = s.total_stored() as f64;
        assert!(
            (got - expect).abs() < 0.5 * expect,
            "total stored {got} far from {expect}"
        );
    }

    #[test]
    fn weighted_reservoir_prefers_heavy_elements() {
        // One element has weight 1000x the rest; it should almost always be
        // present in the sample.
        let mut present = 0;
        for seed in 0..50 {
            let mut s = WeightedReservoirSampler::with_seed(5, seed);
            for x in 0..200u64 {
                let w = if x == 77 { 1000.0 } else { 1.0 };
                s.observe_weighted(x, w);
            }
            if s.sample_elements().contains(&77) {
                present += 1;
            }
        }
        assert!(present >= 47, "heavy element present only {present}/50");
    }

    #[test]
    fn weighted_reservoir_uniform_weights_match_reservoir_marginals() {
        let n = 100u64;
        let k = 10;
        let trials = 2000;
        let mut counts = vec![0u32; n as usize];
        for t in 0..trials {
            let mut s = WeightedReservoirSampler::with_seed(k, 10_000 + t);
            for x in 0..n {
                s.observe_weighted(x, 1.0);
            }
            for x in s.sample_elements() {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (pos, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.30,
                "position {pos} inclusion frequency {c} deviates {dev:.2}"
            );
        }
    }

    #[test]
    fn bernoulli_weighted_matches_expanded_stream() {
        // observe_weighted(x, w) must be bit-identical to w repeats of
        // observe(x), including RNG state (checked by streaming more
        // afterwards).
        for p in [0.01, 0.3, 1.0] {
            let mut weighted = BernoulliSampler::with_seed(p, 11);
            let mut expanded = BernoulliSampler::with_seed(p, 11);
            let items: &[(u64, u64)] = &[(5, 3), (9, 0), (2, 17), (4, 1), (7, 1000), (1, 2)];
            for &(x, w) in items {
                weighted.observe_weighted(x, w);
                for _ in 0..w {
                    expanded.observe(x);
                }
            }
            for x in 0..500u64 {
                weighted.observe(x);
                expanded.observe(x);
            }
            assert_eq!(weighted.sample(), expanded.sample(), "p = {p}");
            assert_eq!(weighted.observed(), expanded.observed());
        }
    }

    #[test]
    fn reservoir_weighted_matches_expanded_stream() {
        // Spans crossing the fill→skip boundary and huge weights must all
        // match the expanded unit stream exactly.
        let mut weighted = ReservoirSampler::with_seed(16, 23);
        let mut expanded = ReservoirSampler::with_seed(16, 23);
        let items: &[(u64, u64)] = &[(3, 7), (8, 0), (1, 30), (6, 1), (2, 5000), (9, 2)];
        for &(x, w) in items {
            weighted.observe_weighted(x, w);
            for _ in 0..w {
                expanded.observe(x);
            }
        }
        for x in 0..500u64 {
            weighted.observe(x);
            expanded.observe(x);
        }
        assert_eq!(weighted.sample(), expanded.sample());
        assert_eq!(weighted.observed(), expanded.observed());
        assert_eq!(weighted.total_stored(), expanded.total_stored());
    }

    #[test]
    fn weighted_batch_matches_pairwise_calls() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, (i * 7) % 5)).collect();
        let mut batch = ReservoirSampler::with_seed(8, 3);
        let mut single = ReservoirSampler::with_seed(8, 3);
        batch.observe_weighted_batch(&pairs);
        for &(x, w) in &pairs {
            single.observe_weighted(x, w);
        }
        assert_eq!(batch.sample(), single.sample());
        let mut bbatch = BernoulliSampler::with_seed(0.2, 3);
        let mut bsingle = BernoulliSampler::with_seed(0.2, 3);
        bbatch.observe_weighted_batch(&pairs);
        for &(x, w) in &pairs {
            bsingle.observe_weighted(x, w);
        }
        assert_eq!(bbatch.sample(), bsingle.sample());
    }

    #[test]
    fn every_kth_is_deterministic() {
        let mut s = EveryKthSampler::new(3);
        for x in 1..=12u64 {
            s.observe(x);
        }
        assert_eq!(s.sample(), &[3, 6, 9, 12]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = ReservoirSampler::with_seed(5, 1);
        for x in 0..100u64 {
            s.observe(x);
        }
        s.reset(2);
        assert!(s.sample().is_empty());
        assert_eq!(s.observed(), 0);
        assert_eq!(s.total_stored(), 0);
    }

    #[test]
    fn bernoulli_snapshot_resumes_bit_identically() {
        use crate::engine::snapshot::SnapshotCodec;
        let stream: Vec<u64> = (0..20_000).map(|i| i * 3 % 4096).collect();
        let mut whole = BernoulliSampler::with_seed(0.02, 9);
        let mut half = BernoulliSampler::with_seed(0.02, 9);
        whole.observe_batch(&stream);
        half.observe_batch(&stream[..7_777]);
        let mut resumed = BernoulliSampler::<u64>::restore(&half.save()).unwrap();
        resumed.observe_batch(&stream[7_777..]);
        assert_eq!(resumed.sample(), whole.sample());
        assert_eq!(resumed.observed(), whole.observed());
    }

    #[test]
    fn reservoir_snapshot_resumes_bit_identically() {
        use crate::engine::snapshot::SnapshotCodec;
        let stream: Vec<u64> = (0..30_000).rev().collect();
        let mut whole = ReservoirSampler::with_seed(128, 4);
        let mut half = ReservoirSampler::with_seed(128, 4);
        whole.observe_batch(&stream);
        half.observe_batch(&stream[..11_111]);
        let mut resumed = ReservoirSampler::<u64>::restore(&half.save()).unwrap();
        assert_eq!(resumed.sample(), half.sample());
        assert_eq!(resumed.total_stored(), half.total_stored());
        resumed.observe_batch(&stream[11_111..]);
        assert_eq!(resumed.sample(), whole.sample());
        assert_eq!(resumed.total_stored(), whole.total_stored());
    }

    #[test]
    fn snapshot_rejects_corrupt_bytes() {
        use crate::engine::snapshot::SnapshotCodec;
        let s = ReservoirSampler::<u64>::with_seed(8, 1);
        let bytes = s.save();
        assert!(ReservoirSampler::<u64>::restore(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ReservoirSampler::<u64>::restore(&trailing).is_err());
    }

    #[test]
    fn bottom_k_size_is_exactly_k() {
        let mut s = BottomKSampler::with_seed(32, 3);
        for x in 0..5_000u64 {
            s.observe(x);
        }
        assert_eq!(s.sample().len(), 32);
        assert_eq!(s.keys().len(), 32);
        assert!(s.threshold().is_some());
    }

    #[test]
    fn bottom_k_threshold_is_max_resident_key() {
        let mut s = BottomKSampler::with_seed(8, 5);
        for x in 0..1_000u64 {
            s.observe(x);
        }
        let t = s.threshold().unwrap();
        assert!(s.keys().iter().all(|&k| k <= t));
        assert!(s.keys().contains(&t));
    }

    #[test]
    fn bottom_k_threshold_decreases_monotonically() {
        // Once full, the inclusion threshold can only shrink.
        let mut s = BottomKSampler::with_seed(16, 7);
        let mut last = f64::INFINITY;
        for x in 0..2_000u64 {
            s.observe(x);
            if let Some(t) = s.threshold() {
                assert!(t <= last + 1e-15, "threshold rose: {t} > {last}");
                last = t;
            }
        }
    }

    #[test]
    fn bottom_k_marginals_match_reservoir() {
        // Same uniform-without-replacement distribution as the reservoir:
        // inclusion probability k/n for every position.
        let n = 100u64;
        let k = 10;
        let trials = 2000;
        let mut counts = vec![0u32; n as usize];
        for t in 0..trials {
            let mut s = BottomKSampler::with_seed(k, 50_000 + t);
            for x in 0..n {
                s.observe(x);
            }
            for &x in s.sample() {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (pos, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.30, "position {pos}: {c} vs {expected}");
        }
    }

    #[test]
    fn bottom_k_total_stored_grows_like_k_ln_n() {
        // Identical churn statistics to the reservoir: E[k'] ≈ k(1 + ln(n/k)).
        let k = 20;
        let n = 20_000u64;
        let mut s = BottomKSampler::with_seed(k, 9);
        for x in 0..n {
            s.observe(x);
        }
        let expect = k as f64 * (1.0 + (n as f64 / k as f64).ln());
        let got = s.total_stored() as f64;
        assert!(
            (got - expect).abs() < 0.5 * expect,
            "k' = {got} vs {expect}"
        );
    }
}
