//! Sliding-window sampling (chain sampling, Babcock–Datar–Motwani).
//!
//! The paper's model scores the sample against the *whole* stream; many of
//! the systems it motivates (§1.2 — routers, load balancers, monitoring)
//! actually care about the **last `w` elements**. [`ChainSampler`]
//! maintains a uniform sample of the active window: each of `k`
//! independent chains holds one uniformly random element of the window,
//! plus a pre-sampled "successor chain" so that when the resident expires
//! a replacement chosen uniformly from the window is available without
//! rescanning.
//!
//! Robustness transfers: a window sample of size `k` is (for the window's
//! content) a uniform sample with-replacement, so the Theorem 1.2
//! Bernoulli-style analysis applies per window position with
//! `ln|R|`-driven sizing — the `window_k_robust` helper sizes it, and the
//! integration tests verify ε-approximation of the active window under
//! drift. (This is an extension beyond the paper, flagged as such in
//! DESIGN.md §3/E12.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One chain: the resident element (with its stream index) and the index
/// at which its successor will be drawn.
#[derive(Debug, Clone)]
struct Chain<T> {
    /// Stream index (1-based) of the resident element.
    idx: usize,
    /// The resident.
    value: T,
    /// The future index whose element will replace the resident when the
    /// resident falls out of the window.
    successor_idx: usize,
    /// Successor element, once observed.
    successor: Option<(usize, T)>,
}

/// Uniform sampling over a sliding window of the last `w` elements, via
/// `k` independent chains (with-replacement across chains).
#[derive(Debug)]
pub struct ChainSampler<T> {
    w: usize,
    chains: Vec<Chain<T>>,
    observed: usize,
    rng: StdRng,
    k: usize,
}

impl<T: Clone> ChainSampler<T> {
    /// `k` independent window samples over a window of `w` elements.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `k == 0`.
    pub fn with_seed(w: usize, k: usize, seed: u64) -> Self {
        assert!(w > 0, "window must be non-empty");
        assert!(k > 0, "need at least one chain");
        Self {
            w,
            chains: Vec::with_capacity(k),
            observed: 0,
            rng: StdRng::seed_from_u64(seed),
            k,
        }
    }

    /// Feed one stream element.
    pub fn observe(&mut self, x: T) {
        self.observed += 1;
        let i = self.observed;
        if self.chains.len() < self.k {
            // Bootstrap: chain starts on the first element it sees; the
            // per-chain reservoir update below keeps it uniform.
            let successor_idx = i + self.draw_offset();
            self.chains.push(Chain {
                idx: i,
                value: x.clone(),
                successor_idx,
                successor: None,
            });
        }
        let w = self.w;
        // Collect per-chain decisions first (borrow discipline), then apply.
        for c in &mut self.chains {
            // Window reservoir step: while the window is filling (i <= w),
            // replace the resident with probability 1/i; afterwards with
            // probability 1/w — standard chain-sampling update.
            let denom = i.min(w) as u64;
            if self.rng.random_range(0..denom) == 0 {
                c.idx = i;
                c.value = x.clone();
                // New resident ⇒ new successor slot in (i, i + w].
                c.successor_idx = i + 1 + self.rng.random_range(0..w as u64) as usize;
                c.successor = None;
            } else if i == c.successor_idx {
                c.successor = Some((i, x.clone()));
            }
            // Expiry: resident left the window; promote the successor.
            if c.idx + w <= i {
                if let Some((sidx, sval)) = c.successor.take() {
                    c.idx = sidx;
                    c.value = sval;
                    c.successor_idx = sidx + 1 + self.rng.random_range(0..w as u64) as usize;
                } else {
                    // Successor not yet seen (it is in the future): fall
                    // back to adopting the current element; its successor
                    // is redrawn. This keeps the chain total and the bias
                    // negligible (the event requires the resident to have
                    // survived a full window, probability ≤ 1/w).
                    c.idx = i;
                    c.value = x.clone();
                    c.successor_idx = i + 1 + self.rng.random_range(0..w as u64) as usize;
                }
            }
        }
    }

    fn draw_offset(&mut self) -> usize {
        1 + self.rng.random_range(0..self.w as u64) as usize
    }

    /// The current window sample (one element per chain, with replacement
    /// across chains). All residents are guaranteed to lie in the active
    /// window.
    pub fn sample(&self) -> Vec<T> {
        self.chains.iter().map(|c| c.value.clone()).collect()
    }

    /// Stream indices of the residents (1-based), for diagnostics/tests.
    pub fn resident_indices(&self) -> Vec<usize> {
        self.chains.iter().map(|c| c.idx).collect()
    }

    /// Elements observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Window length `w`.
    pub fn window(&self) -> usize {
        self.w
    }

    /// Number of chains `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Chain count for (ε, δ) ε-approximation of the active window w.r.t. a
/// system of cardinality `ln_ranges`, by the with-replacement Chernoff +
/// union-bound route: `k = ⌈(ln|R| + ln(2/δ)) / (2ε²)⌉` (Hoeffding on
/// each range's empirical density, union over `|R|`).
pub fn window_k_robust(ln_ranges: f64, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (((ln_ranges + (2.0 / delta).ln()) / (2.0 * eps * eps)).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::prefix_discrepancy;

    #[test]
    fn residents_always_inside_window() {
        let w = 100;
        let mut s = ChainSampler::with_seed(w, 20, 1);
        for x in 0..5_000u64 {
            s.observe(x);
            let i = s.observed();
            for idx in s.resident_indices() {
                assert!(idx <= i, "resident from the future");
                assert!(idx + w > i, "expired resident at index {idx}, round {i}");
            }
        }
    }

    #[test]
    fn sample_size_equals_k() {
        let mut s = ChainSampler::with_seed(50, 8, 2);
        for x in 0..500u64 {
            s.observe(x);
        }
        assert_eq!(s.sample().len(), 8);
    }

    #[test]
    fn window_sample_is_roughly_uniform_over_window() {
        // Long stream; count how often each within-window *age* is held.
        let w = 200;
        let k = 1;
        let mut age_counts = vec![0u32; w];
        for seed in 0..400 {
            let mut s = ChainSampler::with_seed(w, k, seed);
            for x in 0..2_000u64 {
                s.observe(x);
            }
            let i = s.observed();
            for idx in s.resident_indices() {
                age_counts[i - idx] += 1;
            }
        }
        // Expected 400/200 = 2 per age; check halves balance (coarse).
        let young: u32 = age_counts[..w / 2].iter().sum();
        let old: u32 = age_counts[w / 2..].iter().sum();
        let ratio = young as f64 / old.max(1) as f64;
        assert!(
            (0.6..1.7).contains(&ratio),
            "age skew: young {young} vs old {old}"
        );
    }

    #[test]
    fn tracks_distribution_shift() {
        // Stream switches from low to high values; once the window has
        // fully turned over, the sample must reflect only the new regime.
        let w = 500;
        let k = window_k_robust(20.0 * std::f64::consts::LN_2, 0.2, 0.1);
        let mut s = ChainSampler::with_seed(w, k, 7);
        for x in 0..5_000u64 {
            s.observe(x % 100); // low regime
        }
        for x in 0..2_000u64 {
            s.observe(1_000 + x % 100); // high regime, > 2 windows long
        }
        let sample = s.sample();
        assert!(
            sample.iter().all(|&v| v >= 1_000),
            "stale elements survive two window turnovers"
        );
    }

    #[test]
    fn window_sample_approximates_window_distribution() {
        let w = 1_000;
        let ln_r = 10.0 * std::f64::consts::LN_2; // prefix system over 2^10
        let k = window_k_robust(ln_r, 0.15, 0.05);
        let mut s = ChainSampler::with_seed(w, k, 3);
        let mut window = std::collections::VecDeque::new();
        for x in 0..20_000u64 {
            let v = (x * 2_654_435_761) % 1024;
            s.observe(v);
            window.push_back(v);
            if window.len() > w {
                window.pop_front();
            }
        }
        let win: Vec<u64> = window.into_iter().collect();
        let d = prefix_discrepancy(&win, &s.sample()).value;
        assert!(d <= 0.15, "window discrepancy {d}");
    }

    #[test]
    fn window_k_formula_sanity() {
        assert!(window_k_robust(10.0, 0.1, 0.05) > window_k_robust(10.0, 0.2, 0.05));
        assert!(window_k_robust(20.0, 0.1, 0.05) > window_k_robust(10.0, 0.1, 0.05));
        assert_eq!(
            window_k_robust(0.0, 0.9, 0.9).max(1),
            window_k_robust(0.0, 0.9, 0.9)
        );
    }
}
