//! # Adversarially robust streaming sampling
//!
//! A faithful, production-grade implementation of
//! *"The Adversarial Robustness of Sampling"* (Omri Ben-Eliezer and Eylon
//! Yogev, PODS 2020). The paper studies the two most basic streaming
//! sampling algorithms — **Bernoulli sampling** and **reservoir sampling**
//! — in a fully adaptive adversarial model: after every round the adversary
//! observes the sampler's internal state and chooses the next stream element
//! accordingly, trying to make the final sample *unrepresentative* of the
//! stream.
//!
//! The paper's punchline, which this crate makes executable:
//!
//! * **Robustness (Theorem 1.2).** Replacing the VC-dimension term `d` in
//!   the classical static sample-size bound with the cardinality term
//!   `ln |R|` makes both samplers robust: the sample is an
//!   ε-approximation of the stream with probability `1 − δ` against *any*
//!   adaptive adversary. See [`bounds`].
//! * **An attack (Theorem 1.3).** Below roughly `ln |R| / ln n` the
//!   guarantee provably fails: a simple bisection-style adversary traps the
//!   entire sample among the smallest elements of the stream. See
//!   [`adversary`].
//! * **Continuous robustness (Theorem 1.4).** With a `ln ln n` additive
//!   overhead, reservoir sampling keeps the sample representative at *every
//!   prefix* of the stream, not just at the end.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`engine`] | the batched [`engine::StreamSummary`] layer and the [`engine::ExperimentEngine`] game/measurement loop |
//! | [`sampler`] | [`sampler::StreamSampler`] trait, [`sampler::BernoulliSampler`], [`sampler::ReservoirSampler`], weighted reservoir, baselines |
//! | [`set_system`] | [`set_system::SetSystem`] trait and prefix / interval / singleton / axis-box / halfspace / explicit systems |
//! | [`approx`] | ε-approximation checking: exact maximum density discrepancy |
//! | [`bounds`] | sample-size calculators lifted verbatim from the theorem statements |
//! | [`game`] | the `AdaptiveGame` and `ContinuousAdaptiveGame` runners (paper Figures 1–2) |
//! | [`adversary`] | adaptive attack strategies (paper Figure 3 and §1), plus benign/static adversaries |
//! | [`attack`] | the pluggable attack subsystem: [`attack::AttackStrategy`] trait, attack registry (`--attack`), and the attack-vs-defense [`attack::Duel`] loop |
//! | [`estimators`] | quantiles, heavy hitters, range queries, center points computed from a sample |
//! | [`sketch`] | self-sizing [`sketch::RobustQuantileSketch`] / [`sketch::RobustHeavyHitterSketch`] |
//! | [`net`] | ε-net checking and the approximation-implies-net transfer |
//! | [`martingale`] | the concentration-inequality toolbox of §3/§4 as executable code |
//! | [`dyadic`] | arbitrary-precision dyadic rationals in `[0,1]` powering the continuous bisection attack |
//!
//! ## Quick example
//!
//! ```
//! use robust_sampling_core::bounds;
//! use robust_sampling_core::sampler::{ReservoirSampler, StreamSampler};
//! use robust_sampling_core::set_system::{PrefixSystem, SetSystem};
//!
//! // A robust reservoir for streams over U = {0,..,999} with prefix ranges,
//! // sized by Theorem 1.2 for (eps, delta) = (0.1, 0.01).
//! let universe = 1000u64;
//! let system = PrefixSystem::new(universe);
//! let k = bounds::reservoir_k_robust(system.ln_cardinality(), 0.1, 0.01);
//! let mut sampler = ReservoirSampler::with_seed(k, 7);
//! for x in 0..10_000u64 {
//!     sampler.observe(x % universe);
//! }
//! let report = system.max_discrepancy(
//!     &(0..10_000u64).map(|x| x % universe).collect::<Vec<_>>(),
//!     sampler.sample(),
//! );
//! assert!(report.value <= 0.1, "sample must be a 0.1-approximation");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod approx;
pub mod attack;
pub mod bounds;
pub mod dyadic;
pub mod engine;
pub mod estimators;
pub mod game;
pub mod martingale;
pub mod net;
pub mod sampler;
pub mod set_system;
pub mod sketch;
pub mod window;

pub use adversary::Adversary;
pub use approx::DiscrepancyReport;
pub use attack::{AttackSpec, AttackStrategy, Duel, ObservableDefense};
pub use engine::{
    ExperimentEngine, FrequencySummary, QuantileSummary, StreamSummary, WeightedSummary,
};
pub use game::{AdaptiveGame, ContinuousAdaptiveGame, GameOutcome};
pub use sampler::{BernoulliSampler, Observation, ReservoirSampler, StreamSampler};
pub use set_system::SetSystem;
pub use sketch::{RobustHeavyHitterSketch, RobustQuantileSketch};
