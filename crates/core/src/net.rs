//! ε-nets — the companion notion to ε-approximations.
//!
//! A sample `S` is an **ε-net** of `X` w.r.t. `(U, R)` if every range
//! `R ∈ R` with stream density `d_R(X) ≥ ε` contains at least one sample
//! element. Every ε-approximation is an ε'-net for every `ε' > ε`
//! (a range the sample misses has sample density 0, so its stream density
//! is at most ε) — the classical implication, which makes the paper's
//! Theorem 1.2 immediately yield *adaptively robust ε-nets* from the same
//! Bernoulli/reservoir samples. This module provides the checking side:
//!
//! * [`is_epsilon_net`] / [`worst_uncovered_density`] — exact verification
//!   against an enumerable system;
//! * [`net_size_static`] / [`net_size_adaptive`] — the classical
//!   `O((d/ε)·ln(1/ε))` static bound next to the `ln|R|/ε` cardinality
//!   bound obtained by instantiating Theorem 1.2 at `ε/2` accuracy (the
//!   robust route costs `1/ε` more — nets are cheaper than approximations
//!   only in the static world).

use crate::set_system::SetSystem;

/// The largest stream density among ranges containing **no** sample
/// element, together with a witness. A sample is an ε-net iff this value
/// is `< ε`.
///
/// Enumerates the system's ranges: `O(|R|·(n + s))`. Intended for the
/// moderate, enumerable systems used in tests and experiments.
pub fn worst_uncovered_density<T, S: SetSystem<T>>(
    system: &S,
    stream: &[T],
    sample: &[T],
) -> (f64, Option<String>) {
    let mut worst = 0.0f64;
    let mut witness = None;
    for r in system.ranges() {
        if sample.iter().any(|x| system.contains(&r, x)) {
            continue;
        }
        let d = system.density(&r, stream);
        if d > worst {
            worst = d;
            witness = Some(format!("{r:?}"));
        }
    }
    (worst, witness)
}

/// Whether `sample` is an ε-net of `stream` w.r.t. `system`.
pub fn is_epsilon_net<T, S: SetSystem<T>>(
    system: &S,
    stream: &[T],
    sample: &[T],
    eps: f64,
) -> bool {
    worst_uncovered_density(system, stream, sample).0 < eps
}

/// Classical static ε-net sample size: `⌈(2d/ε)·ln(4d/(εδ)) + (2/ε)·ln(2/δ)⌉`
/// (Haussler–Welzl-style constants).
///
/// # Panics
///
/// Panics if `eps ∉ (0,1)`, `delta ∉ (0,1)`, or `d == 0`.
pub fn net_size_static(vc_dim: u32, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(vc_dim > 0, "VC dimension must be positive");
    let d = vc_dim as f64;
    let s = (2.0 * d / eps) * (4.0 * d / (eps * delta)).ln() + (2.0 / eps) * (2.0 / delta).ln();
    s.ceil() as usize
}

/// Adaptively robust ε-net size via the cardinality route: an
/// `(ε/2)`-approximation is an ε-net, so Theorem 1.2 gives
/// `k = 2(ln|R| + ln(2/δ))/(ε/2)² = 8(ln|R| + ln(2/δ))/ε²`.
///
/// This is the `1/ε` premium robustness pays over the static `~d/ε·ln(1/ε)`
/// net size — there is no known adaptive shortcut for nets below the
/// approximation route.
pub fn net_size_adaptive(ln_ranges: f64, eps: f64, delta: f64) -> usize {
    crate::bounds::reservoir_k_robust(ln_ranges, eps / 2.0, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{ReservoirSampler, StreamSampler};
    use crate::set_system::{ExplicitSystem, IntervalSystem, PrefixSystem};

    #[test]
    fn full_sample_is_always_a_net() {
        let sys = IntervalSystem::new(32);
        let stream: Vec<u64> = (0..32).collect();
        assert!(is_epsilon_net(&sys, &stream, &stream, 1e-9));
    }

    #[test]
    fn empty_sample_fails_for_any_dense_range() {
        let sys = PrefixSystem::new(16);
        let stream: Vec<u64> = (0..16).collect();
        let (worst, witness) = worst_uncovered_density(&sys, &stream, &[]);
        assert_eq!(worst, 1.0); // the full prefix is uncovered
        assert!(witness.is_some());
    }

    #[test]
    fn uncovered_density_detects_the_hole() {
        // Sample misses the range {8..15}: uncovered density = 1/2.
        let sys = IntervalSystem::new(16);
        let stream: Vec<u64> = (0..16).collect();
        let sample: Vec<u64> = (0..8).collect();
        let (worst, _) = worst_uncovered_density(&sys, &stream, &sample);
        assert!((worst - 0.5).abs() < 1e-12);
        assert!(!is_epsilon_net(&sys, &stream, &sample, 0.4));
        assert!(is_epsilon_net(&sys, &stream, &sample, 0.6));
    }

    #[test]
    fn approximation_implies_net() {
        // Any eps-approximation is an eps'-net for eps' > eps: verify on a
        // real reservoir sample.
        let sys = IntervalSystem::new(64);
        let stream: Vec<u64> = (0..6_400u64).map(|v| v % 64).collect();
        let mut sampler = ReservoirSampler::with_seed(200, 3);
        for &x in &stream {
            sampler.observe(x);
        }
        let report = sys.max_discrepancy(&stream, sampler.sample());
        let eps = report.value;
        assert!(
            is_epsilon_net(&sys, &stream, sampler.sample(), eps + 1e-9),
            "an {eps}-approximation must be an (eps+)-net"
        );
    }

    #[test]
    fn explicit_system_net_check() {
        let sys = ExplicitSystem::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        let stream = vec![0u64, 1, 2, 3, 4, 5];
        // Sample hits ranges 0 and 1 but not 2 (density 1/3).
        let sample = vec![0u64, 2];
        let (worst, _) = worst_uncovered_density(&sys, &stream, &sample);
        assert!((worst - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn size_formulas_behave() {
        // Static net size grows like (d/eps) ln(1/eps); adaptive like
        // ln|R|/eps^2. For small d and huge |R| the static is far smaller.
        let s = net_size_static(2, 0.1, 0.05);
        let a = net_size_adaptive(40.0 * std::f64::consts::LN_2, 0.1, 0.05);
        assert!(s < a);
        // Both shrink as eps grows.
        assert!(net_size_static(2, 0.2, 0.05) < s);
        assert!(net_size_adaptive(27.7, 0.2, 0.05) < a);
    }
}
