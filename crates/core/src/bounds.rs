//! Sample-size bounds, lifted verbatim from the paper's theorem statements.
//!
//! The headline of the paper is a *recipe*: take the classical static
//! sample-size bound `Θ((d + ln 1/δ)/ε²)` (with `d` the VC-dimension) and
//! replace `d` by `ln |R|` to obtain adaptive robustness. This module
//! encodes both sides of that recipe, the single-set (Lemma 4.1) variants,
//! the continuous-robustness sizing of Theorem 1.4, and the attack
//! thresholds of Theorem 1.3 below which robustness provably fails.
//!
//! All functions take `ln |R|` (the "cardinality dimension") rather than
//! `|R|` so astronomically large families — e.g. all axis-boxes over
//! `[m]^3` — never overflow.

/// Bernoulli sampling rate for (ε, δ)-robustness against adaptive
/// adversaries (Theorem 1.2): `p = 10·(ln|R| + ln(4/δ)) / (ε²·n)`,
/// clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `eps` or `delta` lies outside `(0, 1)`, or `n == 0`.
pub fn bernoulli_p_robust(ln_ranges: f64, eps: f64, delta: f64, n: usize) -> f64 {
    validate(eps, delta);
    assert!(n > 0, "stream length must be positive");
    let p = 10.0 * (ln_ranges + (4.0 / delta).ln()) / (eps * eps * n as f64);
    p.clamp(0.0, 1.0)
}

/// Bernoulli sampling rate for the *single-set* guarantee of Lemma 4.1:
/// `p = 10·ln(4/δ) / (ε²·n)`, clamped to `[0, 1]`.
pub fn bernoulli_p_single(eps: f64, delta: f64, n: usize) -> f64 {
    bernoulli_p_robust(0.0, eps, delta, n)
}

/// Reservoir capacity for (ε, δ)-robustness against adaptive adversaries
/// (Theorem 1.2): `k = ⌈2·(ln|R| + ln(2/δ)) / ε²⌉`.
///
/// # Panics
///
/// Panics if `eps` or `delta` lies outside `(0, 1)`.
pub fn reservoir_k_robust(ln_ranges: f64, eps: f64, delta: f64) -> usize {
    validate(eps, delta);
    let k = 2.0 * (ln_ranges + (2.0 / delta).ln()) / (eps * eps);
    k.ceil().max(1.0) as usize
}

/// Reservoir capacity for the single-set guarantee of Lemma 4.1:
/// `k = ⌈2·ln(2/δ) / ε²⌉`.
pub fn reservoir_k_single(eps: f64, delta: f64) -> usize {
    reservoir_k_robust(0.0, eps, delta)
}

/// Static (non-adaptive) Bernoulli rate `p = c·(d + ln(1/δ)) / (ε²·n)`
/// from the classical VC theory ([VC71, Tal94, LLS01] in the paper).
///
/// The multiplicative constant is kept equal to the adaptive bound's
/// (`c = 10`) so that experiment E11's VC-vs-cardinality ablation isolates
/// the `d` → `ln |R|` substitution, exactly as the paper frames it.
pub fn bernoulli_p_static(vc_dim: u32, eps: f64, delta: f64, n: usize) -> f64 {
    validate(eps, delta);
    assert!(n > 0, "stream length must be positive");
    let p = 10.0 * (vc_dim as f64 + (4.0 / delta).ln()) / (eps * eps * n as f64);
    p.clamp(0.0, 1.0)
}

/// Static (non-adaptive) reservoir capacity `k = ⌈c·(d + ln(1/δ)) / ε²⌉`,
/// with `c = 2` matching [`reservoir_k_robust`] (see
/// [`bernoulli_p_static`] for why the constants are kept aligned).
pub fn reservoir_k_static(vc_dim: u32, eps: f64, delta: f64) -> usize {
    validate(eps, delta);
    let k = 2.0 * (vc_dim as f64 + (2.0 / delta).ln()) / (eps * eps);
    k.ceil().max(1.0) as usize
}

/// Number of checkpoints `t = O(ε⁻¹ ln n)` used by the Theorem 1.4 proof:
/// the geometric grid `i_{j+1} = ⌊(1 + ε/4)·i_j⌋` from `k` up to `n`.
pub fn continuous_checkpoint_count(k: usize, eps: f64, n: usize) -> usize {
    if n <= k {
        return 1;
    }
    let ratio = (n as f64 / k as f64).ln() / (1.0 + eps / 4.0).ln();
    ratio.ceil() as usize + 1
}

/// Reservoir capacity for (ε, δ)-**continuous** robustness (Theorem 1.4):
/// `k = Θ((ln|R| + ln 1/δ + ln 1/ε + ln ln n) / ε²)`.
///
/// Follows the proof's accounting: the per-checkpoint application of
/// Theorem 1.2 at accuracy `ε/4` and confidence `δ/2t` requires
/// `k ≥ 2·(ln|R| + ln(4t/δ)) / (ε/4)²`, and the inter-checkpoint
/// insertion-count condition requires `k ≥ (4/ε)·ln(2t/δ)`. `t` depends
/// (mildly) on `k`, so we iterate the fixed point a few times — it
/// converges immediately in practice because `t` enters only via `ln t`.
pub fn reservoir_k_continuous(ln_ranges: f64, eps: f64, delta: f64, n: usize) -> usize {
    validate(eps, delta);
    assert!(n > 0, "stream length must be positive");
    let mut k = reservoir_k_robust(ln_ranges, eps / 4.0, delta).max(1);
    for _ in 0..8 {
        let t = continuous_checkpoint_count(k, eps, n).max(1) as f64;
        let per_checkpoint = 32.0 * (ln_ranges + (4.0 * t / delta).ln()) / (eps * eps);
        let insertion = 4.0 / eps * (2.0 * t / delta).ln();
        let next = per_checkpoint.max(insertion).ceil().max(1.0) as usize;
        if next == k {
            break;
        }
        k = next;
    }
    k
}

/// Naive union-bound continuous sizing (the "warmup" in the Theorem 1.4
/// proof): apply Theorem 1.2 with `δ' = δ/n` at every prefix, giving
/// `k = ⌈2·(ln|R| + ln(2n/δ)) / ε²⌉` — a `ln n` overhead instead of the
/// checkpoint method's `ln ln n`. Kept for the E5 ablation.
pub fn reservoir_k_continuous_naive(ln_ranges: f64, eps: f64, delta: f64, n: usize) -> usize {
    validate(eps, delta);
    assert!(n > 0, "stream length must be positive");
    reservoir_k_robust(ln_ranges + (n as f64).ln(), eps, delta)
}

/// Theorem 1.3 attack threshold for Bernoulli sampling: the attack defeats
/// any `p < c·ln|R| / (n·ln n)`. The constant follows the proof's
/// requirement `ln N ≥ 6·n·p'·ln n`, i.e. `c = 1/6`.
pub fn attack_bernoulli_p_max(ln_ranges: f64, n: usize) -> f64 {
    assert!(n > 1, "attack needs a non-trivial stream");
    let n = n as f64;
    ln_ranges / (6.0 * n * n.ln())
}

/// Theorem 1.3 attack threshold for reservoir sampling: the attack defeats
/// any `k < c·ln|R| / ln n` (same `c = 1/6` accounting; the proof's
/// reservoir branch additionally loses a `4 ln n` factor absorbed here).
pub fn attack_reservoir_k_max(ln_ranges: f64, n: usize) -> f64 {
    assert!(n > 1, "attack needs a non-trivial stream");
    let n = n as f64;
    ln_ranges / (24.0 * n.ln())
}

/// The Theorem 1.3 universe-size window: the attack construction requires
/// `n⁶·ln n ≤ N ≤ 2^(n/2)`. Returns whether `ln N` lies in that window.
pub fn attack_universe_admissible(ln_universe: f64, n: usize) -> bool {
    assert!(n > 1, "attack needs a non-trivial stream");
    let n = n as f64;
    let lo = 6.0 * n.ln() + n.ln().ln().max(0.0);
    let hi = n / 2.0 * std::f64::consts::LN_2;
    (lo..=hi).contains(&ln_universe)
}

/// Expected Bernoulli sample size `n·p` — the paper compares total sample
/// sizes `Θ((ln|R| + ln 1/δ)/ε²)` across both algorithms; this converts a
/// rate into that common currency.
pub fn bernoulli_expected_sample_size(p: f64, n: usize) -> f64 {
    p * n as f64
}

// ---------------------------------------------------------------------------
// Inverse ("certificate") forms: what guarantee does a deployed sampler hold?
// ---------------------------------------------------------------------------

/// Inverse of [`reservoir_k_robust`] in `δ`: the failure probability a
/// reservoir of capacity `k` guarantees at accuracy `eps` against any
/// adaptive adversary — `δ = 2·|R|·exp(−ε²k/2)`, capped at 1.
///
/// Useful for auditing an already-deployed sampler: "this service keeps
/// k = 4096 samples; what confidence does that buy at ε = 0.05?"
///
/// # Panics
///
/// Panics if `eps ∉ (0,1)` or `k == 0`.
pub fn reservoir_delta_achieved(ln_ranges: f64, eps: f64, k: usize) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(k > 0, "capacity must be positive");
    let ln_delta = (2.0f64).ln() + ln_ranges - eps * eps * k as f64 / 2.0;
    ln_delta.exp().min(1.0)
}

/// Inverse of [`reservoir_k_robust`] in `ε`: the accuracy a reservoir of
/// capacity `k` guarantees at confidence `1 − delta` —
/// `ε = √(2(ln|R| + ln(2/δ))/k)`, capped at 1.
///
/// # Panics
///
/// Panics if `delta ∉ (0,1)` or `k == 0`.
pub fn reservoir_eps_achieved(ln_ranges: f64, delta: f64, k: usize) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(k > 0, "capacity must be positive");
    (2.0 * (ln_ranges + (2.0 / delta).ln()) / k as f64)
        .sqrt()
        .min(1.0)
}

/// Inverse of [`bernoulli_p_robust`] in `ε`: the accuracy a Bernoulli
/// sampler at rate `p` over a stream of length `n` guarantees at
/// confidence `1 − delta` — `ε = √(10(ln|R| + ln(4/δ))/(p·n))`, capped
/// at 1.
///
/// # Panics
///
/// Panics if `delta ∉ (0,1)`, `p ∉ (0,1]`, or `n == 0`.
pub fn bernoulli_eps_achieved(ln_ranges: f64, delta: f64, p: f64, n: usize) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
    assert!(n > 0, "stream length must be positive");
    (10.0 * (ln_ranges + (4.0 / delta).ln()) / (p * n as f64))
        .sqrt()
        .min(1.0)
}

fn validate(eps: f64, delta: f64) {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 0.1;
    const DELTA: f64 = 0.05;

    #[test]
    fn robust_k_formula_spotcheck() {
        // k = ceil(2 (ln R + ln 40) / 0.01)
        let ln_r = (1000f64).ln();
        let k = reservoir_k_robust(ln_r, EPS, DELTA);
        let expect = (2.0 * (ln_r + (2.0 / DELTA).ln()) / (EPS * EPS)).ceil() as usize;
        assert_eq!(k, expect);
    }

    #[test]
    fn bernoulli_p_scales_inverse_n() {
        let p1 = bernoulli_p_robust(5.0, EPS, DELTA, 10_000);
        let p2 = bernoulli_p_robust(5.0, EPS, DELTA, 20_000);
        assert!((p1 / p2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bernoulli_p_clamped_to_one() {
        // Tiny stream: the formula exceeds 1 and must clamp.
        let p = bernoulli_p_robust(100.0, 0.01, 0.01, 10);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn expected_sizes_of_both_algorithms_comparable() {
        // The paper: total sample size Θ((ln|R| + ln 1/δ)/ε²) for both.
        let ln_r = (1u64 << 32) as f64; // huge |R|? no — ln|R| itself
        let ln_r = ln_r.ln();
        let n = 1_000_000;
        let p = bernoulli_p_robust(ln_r, EPS, DELTA, n);
        let k = reservoir_k_robust(ln_r, EPS, DELTA) as f64;
        let ratio = bernoulli_expected_sample_size(p, n) / k;
        assert!(
            (1.0..=10.0).contains(&ratio),
            "expected sizes differ wildly: ratio {ratio}"
        );
    }

    #[test]
    fn static_smaller_than_adaptive_for_prefix_system() {
        // VC dim 1 vs ln|R| = ln N: the adaptive size must be larger.
        let ln_r = (1u64 << 40) as f64;
        let ln_r = ln_r.ln();
        let k_static = reservoir_k_static(1, EPS, DELTA);
        let k_adaptive = reservoir_k_robust(ln_r, EPS, DELTA);
        assert!(k_adaptive > k_static);
    }

    #[test]
    fn continuous_exceeds_plain_and_beats_naive_for_large_n() {
        let ln_r = (1u64 << 30) as f64;
        let ln_r = ln_r.ln();
        let n = 1 << 24;
        let plain = reservoir_k_robust(ln_r, EPS, DELTA);
        let cont = reservoir_k_continuous(ln_r, EPS, DELTA, n);
        let naive = reservoir_k_continuous_naive(ln_r, EPS, DELTA, n);
        assert!(cont >= plain, "continuous {cont} < plain {plain}");
        // The checkpoint method's overhead is ln ln n + ln 1/ε (times the
        // 16x from ε/4); the naive method pays ln n. For huge n and small
        // ln|R| naive loses. Compare the *overhead terms* directly:
        let _ = naive; // sizes cross over depending on constants; assert growth rates:
        let cont_big = reservoir_k_continuous(ln_r, EPS, DELTA, n << 12);
        let naive_big = reservoir_k_continuous_naive(ln_r, EPS, DELTA, n << 12);
        let cont_growth = cont_big as f64 / cont as f64;
        let naive_growth = naive_big as f64 / naive as f64;
        assert!(
            cont_growth < naive_growth,
            "checkpoint overhead should grow slower: {cont_growth} vs {naive_growth}"
        );
    }

    #[test]
    fn checkpoint_count_is_log_over_eps() {
        let t = continuous_checkpoint_count(100, 0.1, 1_000_000);
        // ln(10^4)/ln(1.025) ≈ 373.
        assert!((300..450).contains(&t), "t = {t}");
        assert_eq!(continuous_checkpoint_count(100, 0.1, 50), 1);
    }

    #[test]
    fn attack_thresholds_scale_with_ln_universe() {
        let n = 10_000;
        let small = attack_reservoir_k_max((10f64).exp2().ln(), n); // tiny N — wait, ln of 2^10
        let big = attack_reservoir_k_max(40.0 * std::f64::consts::LN_2, n);
        assert!(big > small);
        let pb = attack_bernoulli_p_max(40.0 * std::f64::consts::LN_2, n);
        assert!(pb > 0.0 && pb < 1.0);
    }

    #[test]
    fn universe_window_thm13() {
        let n = 1000usize;
        // N = n^7 is admissible (n^6 ln n ≤ n^7 ≤ 2^(n/2)).
        let ln_n7 = 7.0 * (n as f64).ln();
        assert!(attack_universe_admissible(ln_n7, n));
        // N = n is too small.
        assert!(!attack_universe_admissible((n as f64).ln(), n));
        // N = 2^n is too large.
        assert!(!attack_universe_admissible(
            n as f64 * std::f64::consts::LN_2,
            n
        ));
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        let _ = reservoir_k_robust(1.0, 1.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn rejects_bad_delta() {
        let _ = reservoir_k_robust(1.0, 0.5, 0.0);
    }

    #[test]
    fn forward_and_inverse_forms_round_trip() {
        // k(eps, delta) followed by eps_achieved(k) must return ~eps
        // (within ceiling slack), and similarly for delta.
        let ln_r = (1u64 << 24) as f64;
        let ln_r = ln_r.ln();
        let k = reservoir_k_robust(ln_r, EPS, DELTA);
        let eps_back = reservoir_eps_achieved(ln_r, DELTA, k);
        assert!(
            eps_back <= EPS && eps_back > 0.9 * EPS,
            "eps round trip: {eps_back} vs {EPS}"
        );
        let delta_back = reservoir_delta_achieved(ln_r, EPS, k);
        assert!(
            delta_back <= DELTA,
            "delta round trip: {delta_back} vs {DELTA}"
        );
    }

    #[test]
    fn achieved_guarantees_are_monotone() {
        let ln_r = 15.0;
        // More capacity -> better (smaller) achieved eps and delta.
        assert!(
            reservoir_eps_achieved(ln_r, 0.05, 4000) < reservoir_eps_achieved(ln_r, 0.05, 1000)
        );
        assert!(
            reservoir_delta_achieved(ln_r, 0.1, 4000) < reservoir_delta_achieved(ln_r, 0.1, 1000)
        );
        // Bigger rate/stream -> better achieved eps for Bernoulli.
        assert!(
            bernoulli_eps_achieved(ln_r, 0.05, 0.2, 100_000)
                < bernoulli_eps_achieved(ln_r, 0.05, 0.05, 100_000)
        );
    }

    #[test]
    fn tiny_capacity_yields_vacuous_certificates() {
        // A single-slot reservoir certifies nothing: both inverses cap.
        assert_eq!(reservoir_delta_achieved(20.0, 0.1, 1), 1.0);
        assert_eq!(reservoir_eps_achieved(20.0, 0.1, 1), 1.0);
    }

    #[test]
    fn single_set_bounds_are_smaller() {
        assert!(reservoir_k_single(EPS, DELTA) <= reservoir_k_robust(3.0, EPS, DELTA));
        assert!(
            bernoulli_p_single(EPS, DELTA, 100_000) <= bernoulli_p_robust(3.0, EPS, DELTA, 100_000)
        );
    }
}
