//! Adversarial strategies.
//!
//! The paper's adversary is an arbitrary probabilistic process that sees
//! the sampler's state `σ_{i−1}` (and everything it sent before) and picks
//! the next element. This module provides:
//!
//! * [`DiscreteAttackAdversary`] — the **Figure 3 attack** proving Theorem
//!   1.3: a shrinking-interval strategy over `U = [N]` that traps every
//!   stored element below every discarded one;
//! * [`BisectionAdversary`] — the **introduction's attack** over the real
//!   interval `[0,1]`, run exactly with arbitrary-precision
//!   [dyadic rationals](crate::dyadic);
//! * [`GreedyDiscrepancyAdversary`] — a best-effort heuristic that pushes
//!   the current Kolmogorov–Smirnov witness, used to stress-test the
//!   Theorem 1.2 *upper* bound (which must hold against every strategy);
//! * benign baselines: [`StaticAdversary`] (a fixed stream, the paper's
//!   static setting), [`RandomAdversary`], [`SortedAdversary`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robust_sampling_streamgen::source::{StreamSource, DEFAULT_FRAME};

use crate::dyadic::Dyadic;
use crate::sampler::Observation;

/// What the adversary sees before choosing round `i`'s element: exactly
/// the information the paper grants it (the state `σ_{i−1}`, its own past
/// stream, and — redundantly, since it is deducible from consecutive
/// states — the outcome of the previous round).
#[derive(Debug)]
pub struct RoundContext<'a, T> {
    /// Current round `i` (1-based); the element returned becomes `x_i`.
    pub round: usize,
    /// Total number of rounds `n` (the paper's adversary knows `n`).
    pub n: usize,
    /// The sampler state `σ_{i−1}` — the current sample.
    pub sample: &'a [T],
    /// What happened to `x_{i−1}` (None on round 1).
    pub last_outcome: Option<&'a Observation<T>>,
    /// The elements submitted so far, `x_1, …, x_{i−1}`.
    pub history: &'a [T],
}

/// An adaptive adversary choosing the stream of an
/// [`AdaptiveGame`](crate::game::AdaptiveGame).
pub trait Adversary<T> {
    /// Choose the next element given the observable state.
    fn next(&mut self, ctx: &RoundContext<'_, T>) -> T;

    /// Name used in experiment reports.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

/// Boxed adversaries adapt transparently, so experiment code can hand
/// heterogeneous strategy suites to the engine.
impl<T, A: Adversary<T> + ?Sized> Adversary<T> for Box<A> {
    fn next(&mut self, ctx: &RoundContext<'_, T>) -> T {
        (**self).next(ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

// ---------------------------------------------------------------------------
// Benign baselines
// ---------------------------------------------------------------------------

/// Replays a fixed stream — the paper's *static* setting, where the whole
/// stream is committed in advance and the classical VC bounds apply.
#[derive(Debug, Clone)]
pub struct StaticAdversary<T> {
    stream: Vec<T>,
}

impl<T> StaticAdversary<T> {
    /// Wrap a fixed stream. The stream must be at least as long as the
    /// game it is used in.
    pub fn new(stream: Vec<T>) -> Self {
        Self { stream }
    }
}

impl<T: Clone> Adversary<T> for StaticAdversary<T> {
    fn next(&mut self, ctx: &RoundContext<'_, T>) -> T {
        self.stream
            .get(ctx.round - 1)
            .expect("static stream shorter than game")
            .clone()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Adapts any lazy [`StreamSource`] into the adversary interface, so
/// static (oblivious) workloads and adaptive attackers are interchangeable
/// inside [`AdaptiveGame`](crate::game::AdaptiveGame) and
/// [`ContinuousAdaptiveGame`](crate::game::ContinuousAdaptiveGame).
///
/// Unlike [`StaticAdversary`], which owns its whole stream, this adapter
/// holds one frame (default [`DEFAULT_FRAME`] elements) and refills it
/// from the source on demand — memory stays bounded by the frame no
/// matter the game length. The source must produce at least as many
/// elements as the game has rounds.
#[derive(Debug)]
pub struct SourceAdversary<S, T = u64> {
    source: S,
    buf: Vec<T>,
    pos: usize,
    frame: usize,
}

impl<S, T> SourceAdversary<S, T> {
    /// Adapt a source at the default frame size.
    pub fn new(source: S) -> Self {
        Self::with_frame(source, DEFAULT_FRAME)
    }

    /// Adapt a source, refilling `frame` elements at a time.
    ///
    /// # Panics
    ///
    /// Panics if `frame == 0`.
    pub fn with_frame(source: S, frame: usize) -> Self {
        assert!(frame > 0, "frame must be positive");
        Self {
            source,
            buf: Vec::new(),
            pos: 0,
            frame,
        }
    }

    /// The wrapped source (e.g. to read generator state after a game).
    pub fn source(&self) -> &S {
        &self.source
    }
}

impl<T: Clone, S: StreamSource<T>> Adversary<T> for SourceAdversary<S, T> {
    fn next(&mut self, _ctx: &RoundContext<'_, T>) -> T {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            let got = self.source.next_chunk(&mut self.buf, self.frame);
            assert!(got > 0, "stream source exhausted before the game ended");
        }
        let x = self.buf[self.pos].clone();
        self.pos += 1;
        x
    }

    fn name(&self) -> &'static str {
        self.source.name()
    }
}

/// Uniform random elements from `{0, …, universe−1}` — an oblivious
/// baseline against which every sampler trivially succeeds.
#[derive(Debug)]
pub struct RandomAdversary {
    universe: u64,
    rng: StdRng,
}

impl RandomAdversary {
    /// Uniform over `{0, …, universe−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        Self {
            universe,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary<u64> for RandomAdversary {
    fn next(&mut self, _ctx: &RoundContext<'_, u64>) -> u64 {
        self.rng.random_range(0..self.universe)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Submits `⌊(i−1)·universe/n⌋` — a sorted sweep of the universe. Static
/// (non-adaptive) but a classic stress case for systematic samplers.
#[derive(Debug, Clone, Copy)]
pub struct SortedAdversary {
    universe: u64,
}

impl SortedAdversary {
    /// Sorted sweep over `{0, …, universe−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        Self { universe }
    }
}

impl Adversary<u64> for SortedAdversary {
    fn next(&mut self, ctx: &RoundContext<'_, u64>) -> u64 {
        ((ctx.round - 1) as u128 * self.universe as u128 / ctx.n as u128) as u64
    }

    fn name(&self) -> &'static str {
        "sorted"
    }
}

// ---------------------------------------------------------------------------
// The Figure 3 attack (Theorem 1.3)
// ---------------------------------------------------------------------------

/// The paper's Figure 3 adversary over the discrete universe `U = [N]`:
///
/// ```text
/// 1. a₁ = 1, b₁ = N
/// 2. p' = max{p, ln n / n}
/// 3. round i:  xᵢ = ⌊aᵢ + (1 − p')(bᵢ − aᵢ)⌋
///              if xᵢ was stored   → aᵢ₊₁ = xᵢ, bᵢ₊₁ = bᵢ
///              else               → aᵢ₊₁ = aᵢ, bᵢ₊₁ = xᵢ
/// ```
///
/// Invariant (the paper's Claim 5.2): every stored element is `≤ aᵢ`,
/// every discarded element is `≥ bᵢ`, so at the end the sample consists of
/// (a subset of) the smallest elements ever submitted — maximally
/// unrepresentative for the prefix system.
///
/// The attack can *run out of room* if the working interval collapses
/// (`bᵢ − aᵢ < 2`); Claim 5.1 shows this happens with probability < 1/2
/// when `N ≥ n⁶ ln n` and the sampler is sub-threshold. The adversary then
/// degrades to repeating `aᵢ` and records the failure in
/// [`exhausted`](Self::exhausted).
#[derive(Debug, Clone)]
pub struct DiscreteAttackAdversary {
    a: u64,
    b: u64,
    p_prime: f64,
    exhausted: bool,
}

impl DiscreteAttackAdversary {
    /// The Figure 3 attack against [`BernoulliSampler`] with rate `p`:
    /// sets `p' = max(p, ln n / n)` exactly as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `universe < 4` or `n < 2`.
    ///
    /// [`BernoulliSampler`]: crate::sampler::BernoulliSampler
    pub fn for_bernoulli(p: f64, n: usize, universe: u64) -> Self {
        assert!(n >= 2, "attack needs n >= 2");
        let p_prime = p.max((n as f64).ln() / n as f64);
        Self::with_split(p_prime, universe)
    }

    /// The same attack against [`ReservoirSampler`] with capacity `k`.
    ///
    /// The reservoir stores round `i`'s element with probability `k/i`, and
    /// the total number of insertions concentrates below `k' ≤ 4k·ln n`
    /// (paper §5). The range-splitting fraction is chosen to spend the
    /// `ln N` precision budget evenly across those `k'` insertions:
    /// `p' = max(4k·ln n / n, ln n / n)`, clamped below 1/2.
    ///
    /// # Panics
    ///
    /// Panics if `universe < 4`, `n < 2`, or `k == 0`.
    ///
    /// [`ReservoirSampler`]: crate::sampler::ReservoirSampler
    pub fn for_reservoir(k: usize, n: usize, universe: u64) -> Self {
        assert!(n >= 2, "attack needs n >= 2");
        assert!(k > 0, "reservoir capacity must be positive");
        let ln_n = (n as f64).ln();
        let p_prime = (4.0 * k as f64 * ln_n / n as f64)
            .max(ln_n / n as f64)
            .min(0.49);
        Self::with_split(p_prime, universe)
    }

    /// Attack with an explicit splitting fraction `p'` (exposed for the
    /// threshold-sweep experiments).
    ///
    /// # Panics
    ///
    /// Panics if `universe < 4` or `p' ∉ (0, 1)`.
    pub fn with_split(p_prime: f64, universe: u64) -> Self {
        assert!(universe >= 4, "universe too small for the attack");
        assert!(
            p_prime > 0.0 && p_prime < 1.0,
            "split fraction must be in (0,1), got {p_prime}"
        );
        Self {
            a: 1,
            b: universe,
            p_prime,
            exhausted: false,
        }
    }

    /// Whether the working interval collapsed before the stream ended
    /// (the event Claim 5.1 bounds).
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Current working interval `[a, b]`.
    #[inline]
    pub fn working_range(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// The splitting fraction `p'` in use.
    #[inline]
    pub fn p_prime(&self) -> f64 {
        self.p_prime
    }
}

impl Adversary<u64> for DiscreteAttackAdversary {
    fn next(&mut self, ctx: &RoundContext<'_, u64>) -> u64 {
        // First fold in the outcome of the previous round.
        if let Some(outcome) = ctx.last_outcome {
            let prev = *ctx.history.last().expect("outcome implies history");
            if outcome.stored() {
                self.a = prev;
            } else {
                self.b = prev;
            }
        }
        if self.b.saturating_sub(self.a) < 2 {
            self.exhausted = true;
            return self.a;
        }
        // x = ⌊a + (1 − p')(b − a)⌋, kept strictly inside (a, b).
        let span = (self.b - self.a) as f64;
        let x = self.a + ((1.0 - self.p_prime) * span) as u64;
        x.clamp(self.a + 1, self.b - 1)
    }

    fn name(&self) -> &'static str {
        "figure3-attack"
    }
}

// ---------------------------------------------------------------------------
// The introduction's bisection attack over [0,1]
// ---------------------------------------------------------------------------

/// The paper's introductory attack on `[0, 1]`: submit the midpoint of the
/// working range; if it was stored, recurse into the upper half, else into
/// the lower half. After `n` rounds, **with probability 1** the Bernoulli
/// sample is exactly the set of smallest elements of the stream.
///
/// Elements are exact [`Dyadic`] rationals, so the attack needs (and
/// consumes) one bit of precision per round — the exponential-universe
/// behaviour the paper uses to motivate the discrete analysis.
#[derive(Debug, Clone, Default)]
pub struct BisectionAdversary {
    /// The lower endpoint of the working dyadic interval
    /// `[prefix, prefix + 2^-depth)`.
    prefix: Dyadic,
}

impl BisectionAdversary {
    /// Start with the full interval `[0, 1)`.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current working interval's lower endpoint.
    pub fn working_prefix(&self) -> &Dyadic {
        &self.prefix
    }
}

impl Adversary<Dyadic> for BisectionAdversary {
    fn next(&mut self, ctx: &RoundContext<'_, Dyadic>) -> Dyadic {
        if let Some(outcome) = ctx.last_outcome {
            // Previous midpoint was prefix·1; stored ⇒ move to upper half
            // (prefix := prefix·1), else lower half (prefix := prefix·0).
            self.prefix = self.prefix.child(outcome.stored());
        }
        self.prefix.child(true)
    }

    fn name(&self) -> &'static str {
        "bisection"
    }
}

/// The Figure 3 attack in its *unbounded-precision* habitat: the working
/// interval is a dyadic atom `[prefix, prefix + 2^-d)` and the probe is
/// its `(1 − 2^-t)`-quantile (`t` appended one-bits), i.e. the asymmetric
/// split with `p' = 2^-t`. [`BisectionAdversary`] is the `t = 1` case.
///
/// Unlike [`DiscreteAttackAdversary`], this adversary **never exhausts**:
/// every stored probe costs `t` bits of precision and every skipped probe
/// one bit, and [`Dyadic`] precision is unlimited. This is exactly the
/// paper's point that over (effectively) infinite universes the attack
/// defeats *any* strongly sublinear sample size — experiment E1 uses it to
/// crush theorem-sized reservoirs that the discrete attack cannot touch.
#[derive(Debug, Clone)]
pub struct GeneralizedBisectionAdversary {
    prefix: Dyadic,
    t: usize,
}

impl GeneralizedBisectionAdversary {
    /// Attack with probe quantile `1 − 2^-t`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn with_tail_bits(t: usize) -> Self {
        assert!(t > 0, "need at least one probe bit");
        Self {
            prefix: Dyadic::zero(),
            t,
        }
    }

    /// Tune `t` against a Bernoulli sampler: `p' = max(p, ln n / n)` per
    /// Figure 3, then `t = max(1, ⌊log₂(1/p')⌋)`.
    pub fn for_bernoulli(p: f64, n: usize) -> Self {
        assert!(n >= 2, "attack needs n >= 2");
        let p_prime = p.max((n as f64).ln() / n as f64).clamp(1e-12, 0.5);
        Self::with_tail_bits(((1.0 / p_prime).log2().floor() as usize).max(1))
    }

    /// Tune `t` against a reservoir of capacity `k` over `n` rounds:
    /// the reservoir inserts ≈ `k·ln(n/k)` times, so the per-round
    /// insertion intensity is `p' ≈ k·ln(n/k)/n`.
    pub fn for_reservoir(k: usize, n: usize) -> Self {
        assert!(n >= 2 && k >= 1, "attack needs n >= 2, k >= 1");
        let kp = k as f64 * (1.0 + (n as f64 / k as f64).max(1.0).ln());
        let p_prime = (kp / n as f64).clamp(1e-12, 0.5);
        Self::with_tail_bits(((1.0 / p_prime).log2().floor() as usize).max(1))
    }

    /// The probe depth parameter `t` (`p' = 2^-t`).
    #[inline]
    pub fn tail_bits(&self) -> usize {
        self.t
    }
}

impl Adversary<Dyadic> for GeneralizedBisectionAdversary {
    fn next(&mut self, ctx: &RoundContext<'_, Dyadic>) -> Dyadic {
        if let Some(outcome) = ctx.last_outcome {
            if outcome.stored() {
                // New interval [probe, top): the atom below the old top.
                self.prefix = self.prefix.child_ones(self.t);
            } else {
                // New interval ⊆ [prefix, probe): keep the lower half atom.
                self.prefix = self.prefix.child(false);
            }
        }
        self.prefix.child_ones(self.t)
    }

    fn name(&self) -> &'static str {
        "generalized-bisection"
    }
}

// ---------------------------------------------------------------------------
// Greedy heuristic adversary
// ---------------------------------------------------------------------------

/// A best-effort heuristic adversary for stress-testing the Theorem 1.2
/// upper bound: it periodically finds the current prefix-discrepancy
/// witness `b*` between its stream-so-far and the visible sample, and then
/// floods the side of `b*` that *amplifies* the signed error.
///
/// If the sample under-represents `[0, b*]` (`d(X) − d(S) > 0`), the
/// adversary submits elements just inside `[0, b*]`; mass it adds there
/// raises `d_X` faster than `d_S` rises in expectation (new elements are
/// sampled at the going rate), sustaining the gap. This is not a provably
/// optimal strategy — none is needed; Theorem 1.2 holds against all — but
/// it is markedly stronger than oblivious streams in practice.
#[derive(Debug)]
pub struct GreedyDiscrepancyAdversary {
    universe: u64,
    recompute_every: usize,
    /// Cached target value and side (+1: flood below, −1: flood above).
    target: u64,
    side: i8,
    rng: StdRng,
}

impl GreedyDiscrepancyAdversary {
    /// Greedy adversary over `{0, …, universe−1}`, recomputing its witness
    /// every `recompute_every` rounds (the recompute costs
    /// `O((i + |S|) log)`; 32–128 is a good stride).
    ///
    /// # Panics
    ///
    /// Panics if `universe < 2` or `recompute_every == 0`.
    pub fn new(universe: u64, recompute_every: usize, seed: u64) -> Self {
        assert!(universe >= 2, "universe too small");
        assert!(recompute_every > 0, "stride must be positive");
        Self {
            universe,
            recompute_every,
            target: universe / 2,
            side: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn recompute(&mut self, history: &[u64], sample: &[u64]) {
        if history.is_empty() || sample.is_empty() {
            return;
        }
        // Signed CDF sweep: find b maximizing |F_X(b) − F_S(b)|.
        let mut xs = history.to_vec();
        let mut ss = sample.to_vec();
        xs.sort_unstable();
        ss.sort_unstable();
        let (mut i, mut j) = (0usize, 0usize);
        let mut best = 0.0f64;
        let mut best_b = self.universe / 2;
        let mut best_side = 1i8;
        while i < xs.len() || j < ss.len() {
            let v = match (xs.get(i), ss.get(j)) {
                (Some(&a), Some(&b)) => a.min(b),
                (Some(&a), None) => a,
                (None, Some(&b)) => b,
                (None, None) => unreachable!(),
            };
            while i < xs.len() && xs[i] <= v {
                i += 1;
            }
            while j < ss.len() && ss[j] <= v {
                j += 1;
            }
            let d = i as f64 / xs.len() as f64 - j as f64 / ss.len() as f64;
            if d.abs() > best {
                best = d.abs();
                best_b = v;
                best_side = if d > 0.0 { 1 } else { -1 };
            }
        }
        self.target = best_b;
        self.side = best_side;
    }
}

impl Adversary<u64> for GreedyDiscrepancyAdversary {
    fn next(&mut self, ctx: &RoundContext<'_, u64>) -> u64 {
        if ctx.round % self.recompute_every == 1 || ctx.round == 1 {
            self.recompute(ctx.history, ctx.sample);
        }
        if self.side > 0 {
            // Flood just inside [0, target].
            self.rng.random_range(0..=self.target)
        } else {
            // Flood above target.
            let lo = (self.target + 1).min(self.universe - 1);
            self.rng.random_range(lo..self.universe)
        }
    }

    fn name(&self) -> &'static str {
        "greedy-discrepancy"
    }
}

// ---------------------------------------------------------------------------
// Quantile hunter
// ---------------------------------------------------------------------------

/// An adaptive adversary specialised against quantile sketches (experiment
/// E6): it watches the sample's current median and keeps submitting
/// elements on one side of it, forcing the *stream's* median to drift away
/// from the frozen sample unless the sampler keeps up.
#[derive(Debug)]
pub struct QuantileHunterAdversary {
    universe: u64,
    rng: StdRng,
}

impl QuantileHunterAdversary {
    /// Hunter over `{0, …, universe−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `universe < 2`.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe >= 2, "universe too small");
        Self {
            universe,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary<u64> for QuantileHunterAdversary {
    fn next(&mut self, ctx: &RoundContext<'_, u64>) -> u64 {
        if ctx.sample.is_empty() {
            return self.rng.random_range(0..self.universe);
        }
        let mut s = ctx.sample.to_vec();
        s.sort_unstable();
        let median = s[s.len() / 2];
        // Push stream mass strictly above the sample's median so the true
        // median climbs while the sample's stays put.
        let lo = median.saturating_add(1).min(self.universe - 1);
        self.rng.random_range(lo..self.universe)
    }

    fn name(&self) -> &'static str {
        "quantile-hunter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::prefix_discrepancy;
    use crate::game::AdaptiveGame;
    use crate::sampler::{BernoulliSampler, ReservoirSampler};

    #[test]
    fn figure3_attack_traps_bernoulli_sample_below_rest() {
        // A u64 universe offers only ln N ≈ 43 nats of precision, so — as
        // the paper stresses — the attack only fits sub-threshold rates on
        // short streams: the budget is ≈ |S|·ln(1/p') + n·p' nats. Theorem
        // 1.3 guarantees success with probability ≥ 1/2; demand ≥ 3/5 seeds.
        let n = 300usize;
        let universe = 1u64 << 62;
        let p = 0.01;
        let mut successes = 0;
        for seed in 0..5 {
            let mut adv = DiscreteAttackAdversary::for_bernoulli(p, n, universe);
            let mut sampler = BernoulliSampler::with_seed(p, seed);
            let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
            if adv.exhausted() || out.sample.is_empty() {
                continue;
            }
            // Claim 5.2: every sampled element < every non-sampled element.
            let max_sampled = out.sample.iter().max().copied().unwrap();
            let min_unsampled = out
                .stream
                .iter()
                .filter(|x| !out.sample.contains(x))
                .min()
                .copied()
                .unwrap();
            assert!(
                max_sampled < min_unsampled,
                "sampled {max_sampled} >= unsampled {min_unsampled}"
            );
            // Discrepancy is exactly 1 − |S|/n when the trap closes.
            let d = prefix_discrepancy(&out.stream, &out.sample).value;
            let expect = 1.0 - out.sample.len() as f64 / n as f64;
            assert!((d - expect).abs() < 1e-9, "d={d}, expect {expect}");
            successes += 1;
        }
        assert!(successes >= 3, "attack landed only {successes}/5 times");
    }

    #[test]
    fn figure3_attack_crushes_reservoir() {
        // Same precision accounting: k = 1 over n = 200 stays inside the
        // u64 budget (k' ≈ 1 + ln n insertions at ~3 nats each, plus n·p').
        let n = 200usize;
        let k = 1;
        let universe = 1u64 << 62;
        let mut successes = 0;
        for seed in 0..6 {
            let mut adv = DiscreteAttackAdversary::for_reservoir(k, n, universe);
            let mut sampler = ReservoirSampler::with_seed(k, seed);
            let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
            if adv.exhausted() {
                continue;
            }
            // Paper §5: residents are among the k' smallest stream elements.
            let mut sorted = out.stream.clone();
            sorted.sort_unstable();
            let kp = out.total_stored;
            let cutoff = sorted[kp - 1];
            for s in &out.sample {
                assert!(*s <= cutoff, "resident {s} above the k'-smallest cutoff");
            }
            let d = prefix_discrepancy(&out.stream, &out.sample).value;
            assert!(d > 0.5, "attack landed but discrepancy only {d}");
            successes += 1;
        }
        assert!(successes >= 3, "attack landed only {successes}/6 times");
    }

    #[test]
    fn figure3_attack_exhausts_on_tiny_universe() {
        // N far below n^6 ln n: Claim 5.1's precondition fails and the
        // interval must collapse.
        let n = 10_000usize;
        let mut adv = DiscreteAttackAdversary::for_bernoulli(0.05, n, 1 << 10);
        let mut sampler = BernoulliSampler::with_seed(0.05, 5);
        let _ = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        assert!(adv.exhausted(), "tiny universe should exhaust the attack");
    }

    #[test]
    fn bisection_makes_bernoulli_sample_exactly_smallest() {
        // The introduction's claim: with probability 1, the sampled set is
        // precisely the |S| smallest stream elements.
        let n = 1_500usize;
        let mut adv = BisectionAdversary::new();
        let mut sampler = BernoulliSampler::with_seed(0.02, 123);
        let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        let mut sorted = out.stream.clone();
        sorted.sort();
        let s = out.sample.len();
        assert!(s > 0, "degenerate: nothing sampled");
        let mut sample_sorted = out.sample.clone();
        sample_sorted.sort();
        assert_eq!(
            sample_sorted,
            sorted[..s].to_vec(),
            "sample is not the set of smallest elements"
        );
    }

    #[test]
    fn bisection_elements_are_all_distinct() {
        let n = 300usize;
        let mut adv = BisectionAdversary::new();
        let mut sampler = BernoulliSampler::with_seed(0.1, 5);
        let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        let mut uniq = out.stream.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), n);
    }

    #[test]
    fn generalized_bisection_traps_large_reservoir() {
        // A theorem-scale reservoir (k = 64) over a modest stream: the
        // discrete attack cannot fit this in u64 precision, but the dyadic
        // attack must trap every resident among the k' smallest elements,
        // with certainty (no exhaustion event exists).
        let n = 3_000usize;
        let k = 64;
        let mut adv = GeneralizedBisectionAdversary::for_reservoir(k, n);
        let mut sampler = ReservoirSampler::with_seed(k, 11);
        let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        let mut sorted = out.stream.clone();
        sorted.sort();
        let cutoff = &sorted[out.total_stored - 1];
        for s in &out.sample {
            assert!(s <= cutoff, "resident above the k'-smallest cutoff");
        }
        let d = prefix_discrepancy(&out.stream, &out.sample).value;
        // k' ≈ k(1 + ln(n/k)) ≈ 310, so d ≥ 1 − k'/n ≈ 0.9.
        assert!(d > 0.8, "attack too weak: discrepancy {d}");
    }

    #[test]
    fn generalized_bisection_for_bernoulli_picks_sane_tail_bits() {
        // p' = max(p, ln n / n); t = floor(log2(1/p')).
        let adv = GeneralizedBisectionAdversary::for_bernoulli(0.25, 10_000);
        assert_eq!(adv.tail_bits(), 2); // 1/0.25 = 4 -> t = 2
        let adv = GeneralizedBisectionAdversary::for_bernoulli(1e-9, 100);
        // ln(100)/100 ≈ 0.046 dominates the tiny p: t = floor(log2(21.7)) = 4.
        assert_eq!(adv.tail_bits(), 4);
        // t never collapses to 0 even for p near 1/2.
        let adv = GeneralizedBisectionAdversary::for_bernoulli(0.5, 100);
        assert!(adv.tail_bits() >= 1);
    }

    #[test]
    fn generalized_bisection_traps_bernoulli_too() {
        let n = 600usize;
        let p = 0.03;
        let mut adv = GeneralizedBisectionAdversary::for_bernoulli(p, n);
        let mut sampler = BernoulliSampler::with_seed(p, 8);
        let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        let s = out.sample.len();
        assert!(s > 0);
        let mut sorted = out.stream.clone();
        sorted.sort();
        let mut sample_sorted = out.sample.clone();
        sample_sorted.sort();
        assert_eq!(sample_sorted, sorted[..s].to_vec());
    }

    #[test]
    fn generalized_bisection_t1_matches_plain_bisection_semantics() {
        // t = 1 must reproduce the plain bisection: sample = |S| smallest.
        let n = 800usize;
        let mut adv = GeneralizedBisectionAdversary::with_tail_bits(1);
        let mut sampler = BernoulliSampler::with_seed(0.05, 21);
        let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        let mut sorted = out.stream.clone();
        sorted.sort();
        let s = out.sample.len();
        let mut sample_sorted = out.sample.clone();
        sample_sorted.sort();
        assert_eq!(sample_sorted, sorted[..s].to_vec());
    }

    #[test]
    fn greedy_adversary_is_stronger_than_random() {
        // Same sampler budget; the greedy adversary should induce at least
        // as much discrepancy as an oblivious uniform stream (usually much
        // more for undersized samplers).
        let n = 3_000usize;
        let universe = 1 << 16;
        let k = 10;
        let mut rand_total = 0.0;
        let mut greedy_total = 0.0;
        for seed in 0..5 {
            let mut s1 = ReservoirSampler::with_seed(k, seed);
            let mut a1 = RandomAdversary::new(universe, 100 + seed);
            let o1 = AdaptiveGame::new(n).run(&mut s1, &mut a1);
            rand_total += prefix_discrepancy(&o1.stream, &o1.sample).value;

            let mut s2 = ReservoirSampler::with_seed(k, seed);
            let mut a2 = GreedyDiscrepancyAdversary::new(universe, 64, 200 + seed);
            let o2 = AdaptiveGame::new(n).run(&mut s2, &mut a2);
            greedy_total += prefix_discrepancy(&o2.stream, &o2.sample).value;
        }
        assert!(
            greedy_total >= rand_total,
            "greedy {greedy_total} < random {rand_total}"
        );
    }

    #[test]
    fn quantile_hunter_displaces_median_of_tiny_sample() {
        let n = 2_000usize;
        let universe = 1 << 20;
        let mut sampler = ReservoirSampler::with_seed(4, 2);
        let mut adv = QuantileHunterAdversary::new(universe, 3);
        let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
        let d = prefix_discrepancy(&out.stream, &out.sample).value;
        assert!(d > 0.25, "hunter too weak: discrepancy {d}");
    }

    #[test]
    fn source_adversary_matches_static_adversary() {
        use robust_sampling_streamgen::{SliceSource, TwoPhaseSource};
        let n = 2_000usize;
        let stream = robust_sampling_streamgen::two_phase(n, 1 << 16, 9);
        // Same sampler seed + same elements => identical outcomes, whether
        // the stream is pre-materialized or pulled lazily in tiny frames.
        let mut s1 = ReservoirSampler::with_seed(32, 4);
        let mut a1 = StaticAdversary::new(stream.clone());
        let o1 = AdaptiveGame::new(n).run(&mut s1, &mut a1);
        let mut s2 = ReservoirSampler::with_seed(32, 4);
        let mut a2 = SourceAdversary::with_frame(SliceSource::new(&stream), 7);
        let o2 = AdaptiveGame::new(n).run(&mut s2, &mut a2);
        assert_eq!(o1.stream, o2.stream);
        assert_eq!(o1.sample, o2.sample);
        // A generator source plugged straight in produces the same stream
        // it would materialize.
        let mut s3 = ReservoirSampler::with_seed(32, 4);
        let mut a3 = SourceAdversary::new(TwoPhaseSource::new(n, 1 << 16, 9));
        let o3 = AdaptiveGame::new(n).run(&mut s3, &mut a3);
        assert_eq!(o3.stream, stream);
        assert_eq!(o3.sample, o1.sample);
        assert_eq!(Adversary::<u64>::name(&a3), "two-phase");
    }

    #[test]
    #[should_panic(expected = "exhausted before the game ended")]
    fn source_adversary_panics_on_short_source() {
        let stream: Vec<u64> = (0..10).collect();
        let mut adv = SourceAdversary::new(robust_sampling_streamgen::SliceSource::new(&stream));
        let mut sampler = BernoulliSampler::with_seed(0.5, 1);
        let _ = AdaptiveGame::new(11).run(&mut sampler, &mut adv);
    }

    #[test]
    fn sorted_adversary_covers_universe() {
        let mut adv = SortedAdversary::new(1000);
        let mut sampler = BernoulliSampler::with_seed(0.5, 1);
        let out = AdaptiveGame::new(500).run(&mut sampler, &mut adv);
        assert!(out.stream.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.stream[0], 0);
        assert!(*out.stream.last().unwrap() >= 990);
    }
}
