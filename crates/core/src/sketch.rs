//! High-level, self-sizing robust sketches — the Corollary 1.5/1.6
//! pipelines packaged as single types.
//!
//! These wrap a [`ReservoirSampler`] sized by Theorem 1.2 so a user states
//! the *guarantee* they want (universe, ε, δ) and never touches the
//! arithmetic:
//!
//! * [`RobustQuantileSketch`] — every rank/quantile query within `±εn`,
//!   simultaneously, with probability `1 − δ`, against any adaptive
//!   adversary (Corollary 1.5);
//! * [`RobustHeavyHitterSketch`] — the `(α, ε)` heavy-hitters contract of
//!   Corollary 1.6 (no missed `≥ α` hitters, no reports below `α − ε`).
//!
//! Both are *anytime*: reservoir sampling never needs the stream length in
//! advance (the paper's Section 2 note), so queries are valid at every
//! prefix — at the plain Theorem 1.2 confidence per query point; use
//! [`crate::bounds::reservoir_k_continuous`]
//! sizing via [`RobustQuantileSketch::with_capacity`] when the Theorem 1.4
//! *all-prefixes-at-once* guarantee is needed.

use crate::bounds;
use crate::estimators::{self, HeavyHitter, SampleQuantiles};
use crate::sampler::{ReservoirSampler, StreamSampler};

/// A self-sizing, adaptively robust quantile sketch (Corollary 1.5).
#[derive(Debug, Clone)]
pub struct RobustQuantileSketch<T> {
    reservoir: ReservoirSampler<T>,
    eps: f64,
    delta: f64,
}

impl<T: Ord + Clone> RobustQuantileSketch<T> {
    /// Sketch for a well-ordered universe of `ln_universe = ln |U|`
    /// (e.g. `64·ln 2` for `u64` keys), accuracy `eps`, confidence
    /// `1 − delta`. The reservoir capacity is
    /// `k = 2(ln|U| + ln(2/δ))/ε²` per Corollary 1.5.
    ///
    /// # Panics
    ///
    /// Panics if `eps` or `delta` lies outside `(0, 1)` or
    /// `ln_universe < 0`.
    pub fn new(ln_universe: f64, eps: f64, delta: f64, seed: u64) -> Self {
        assert!(ln_universe >= 0.0, "ln|U| must be non-negative");
        let k = bounds::reservoir_k_robust(ln_universe, eps, delta);
        Self::with_capacity(k, eps, delta, seed)
    }

    /// Sketch with an explicit reservoir capacity (e.g. the Theorem 1.4
    /// continuous sizing).
    pub fn with_capacity(k: usize, eps: f64, delta: f64, seed: u64) -> Self {
        Self {
            reservoir: ReservoirSampler::with_seed(k, seed),
            eps,
            delta,
        }
    }

    /// Feed one stream element.
    pub fn observe(&mut self, x: T) {
        self.reservoir.observe(x);
    }

    /// Feed a batch of stream elements through the reservoir's gap-skip
    /// hot path (identical result to element-wise observation).
    pub fn observe_batch(&mut self, xs: &[T]) {
        self.reservoir.observe_batch(xs);
    }

    /// The estimated `q`-quantile of everything observed so far; `None`
    /// before the first element.
    ///
    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<T> {
        if self.reservoir.sample().is_empty() {
            return None;
        }
        let sq = SampleQuantiles::new(self.reservoir.sample(), self.reservoir.observed());
        Some(sq.quantile(q).clone())
    }

    /// The estimated median.
    pub fn median(&self) -> Option<T> {
        self.quantile(0.5)
    }

    /// Estimated rank of `x` among everything observed so far (±εn w.h.p.).
    pub fn rank(&self, x: &T) -> f64 {
        if self.reservoir.sample().is_empty() {
            return 0.0;
        }
        SampleQuantiles::new(self.reservoir.sample(), self.reservoir.observed()).rank(x)
    }

    /// Elements observed so far.
    pub fn observed(&self) -> usize {
        self.reservoir.observed()
    }

    /// The retained sample — the sketch's full observable state in the
    /// paper's adversarial model (see [`crate::attack`]).
    pub fn sample(&self) -> &[T] {
        self.reservoir.sample()
    }

    /// Reservoir capacity (the memory footprint in elements).
    pub fn capacity(&self) -> usize {
        self.reservoir.k()
    }

    /// The `(ε, δ)` contract this sketch was sized for.
    pub fn guarantee(&self) -> (f64, f64) {
        (self.eps, self.delta)
    }

    /// Merge another robust quantile sketch into this one by merging the
    /// underlying reservoirs (see [`ReservoirSampler::merge`]): the result
    /// is distributed as one sketch run over the concatenated stream, so
    /// the `(ε, δ)` contract carries over to the union.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were sized differently (unequal reservoir
    /// capacities).
    pub fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity(),
            other.capacity(),
            "cannot merge robust quantile sketches of different capacities"
        );
        self.reservoir.merge(other.reservoir);
    }
}

/// A self-sizing, adaptively robust heavy-hitters sketch (Corollary 1.6).
#[derive(Debug, Clone)]
pub struct RobustHeavyHitterSketch<T> {
    reservoir: ReservoirSampler<T>,
    alpha: f64,
    eps: f64,
}

impl<T: Ord + Clone> RobustHeavyHitterSketch<T> {
    /// Sketch reporting all elements of stream density `≥ alpha` and none
    /// below `alpha − eps`, w.p. `1 − delta`, for a universe of
    /// `ln_universe = ln |U|`. Internally sizes an `(ε/3)`-approximate
    /// sample w.r.t. singletons, per the corollary's proof.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]`, `eps ∉ (0, alpha)`, `delta ∉ (0,1)`,
    /// or `ln_universe < 0`.
    pub fn new(ln_universe: f64, alpha: f64, eps: f64, delta: f64, seed: u64) -> Self {
        assert!(ln_universe >= 0.0, "ln|U| must be non-negative");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(eps > 0.0 && eps < alpha, "need 0 < eps < alpha");
        let k = bounds::reservoir_k_robust(ln_universe, eps / 3.0, delta);
        Self {
            reservoir: ReservoirSampler::with_seed(k, seed),
            alpha,
            eps,
        }
    }

    /// Feed one stream element.
    pub fn observe(&mut self, x: T) {
        self.reservoir.observe(x);
    }

    /// Feed a batch of stream elements through the reservoir's gap-skip
    /// hot path (identical result to element-wise observation).
    pub fn observe_batch(&mut self, xs: &[T]) {
        self.reservoir.observe_batch(xs);
    }

    /// The current heavy-hitter report (highest density first).
    pub fn report(&self) -> Vec<HeavyHitter<T>> {
        estimators::heavy_hitters(self.reservoir.sample(), self.alpha, self.eps / 3.0)
    }

    /// Estimated stream density of `x`.
    pub fn density(&self, x: &T) -> f64 {
        let s = self.reservoir.sample();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().filter(|v| *v == x).count() as f64 / s.len() as f64
    }

    /// Elements observed so far.
    pub fn observed(&self) -> usize {
        self.reservoir.observed()
    }

    /// The retained sample — the sketch's full observable state in the
    /// paper's adversarial model (see [`crate::attack`]).
    pub fn sample(&self) -> &[T] {
        self.reservoir.sample()
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.reservoir.k()
    }

    /// The `(α, ε)` contract.
    pub fn contract(&self) -> (f64, f64) {
        (self.alpha, self.eps)
    }

    /// Merge another robust heavy-hitters sketch into this one by merging
    /// the underlying reservoirs (see [`ReservoirSampler::merge`]): the
    /// merged sample is distributed as one sketch over the concatenated
    /// stream, so the `(α, ε)` contract carries over to the union.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were sized differently (unequal reservoir
    /// capacities).
    pub fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity(),
            other.capacity(),
            "cannot merge robust heavy-hitter sketches of different capacities"
        );
        self.reservoir.merge(other.reservoir);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore (SnapshotCodec)
// ---------------------------------------------------------------------------

use crate::engine::snapshot::{put_f64, SnapshotCodec, SnapshotError, SnapshotReader};

/// Checkpoint = the `(ε, δ)` contract plus the full reservoir state (see
/// [`ReservoirSampler`]'s codec): a restored sketch answers and ingests
/// bit-identically.
impl SnapshotCodec for RobustQuantileSketch<u64> {
    fn save_into(&self, out: &mut Vec<u8>) {
        put_f64(out, self.eps);
        put_f64(out, self.delta);
        self.reservoir.save_into(out);
    }

    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let eps = r.f64()?;
        let delta = r.f64()?;
        if !(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0) {
            return Err(SnapshotError::Corrupt("quantile sketch (eps, delta)"));
        }
        Ok(Self {
            reservoir: ReservoirSampler::restore_from(r)?,
            eps,
            delta,
        })
    }
}

/// Checkpoint = the `(α, ε)` contract plus the full reservoir state (see
/// [`ReservoirSampler`]'s codec): a restored sketch answers and ingests
/// bit-identically.
impl SnapshotCodec for RobustHeavyHitterSketch<u64> {
    fn save_into(&self, out: &mut Vec<u8>) {
        put_f64(out, self.alpha);
        put_f64(out, self.eps);
        self.reservoir.save_into(out);
    }

    fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let alpha = r.f64()?;
        let eps = r.f64()?;
        if !(alpha > 0.0 && alpha <= 1.0 && eps > 0.0 && eps < alpha) {
            return Err(SnapshotError::Corrupt("heavy-hitter sketch (alpha, eps)"));
        }
        Ok(Self {
            reservoir: ReservoirSampler::restore_from(r)?,
            alpha,
            eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN_U: f64 = 20.0 * std::f64::consts::LN_2;

    #[test]
    fn quantile_sketch_sizes_itself() {
        let s = RobustQuantileSketch::<u64>::new(LN_U, 0.1, 0.05, 1);
        let expect = bounds::reservoir_k_robust(LN_U, 0.1, 0.05);
        assert_eq!(s.capacity(), expect);
        assert_eq!(s.guarantee(), (0.1, 0.05));
    }

    #[test]
    fn quantile_sketch_tracks_uniform_stream() {
        let mut s = RobustQuantileSketch::new(LN_U, 0.05, 0.01, 2);
        let n = 50_000u64;
        for x in 0..n {
            s.observe(x); // values 0..n: true median is n/2
        }
        assert_eq!(s.observed(), n as usize);
        let med = s.median().unwrap() as f64;
        let expect = n as f64 / 2.0;
        assert!(
            (med - expect).abs() / n as f64 <= 0.06,
            "median {med} vs {expect}"
        );
        // rank is calibrated to observed length.
        let r = s.rank(&(n / 2));
        assert!((r / n as f64 - 0.5).abs() < 0.06, "rank {r}");
    }

    #[test]
    fn quantile_sketch_is_anytime() {
        let mut s = RobustQuantileSketch::new(LN_U, 0.1, 0.05, 3);
        assert_eq!(s.quantile(0.5), None);
        s.observe(7u64);
        assert_eq!(s.median(), Some(7));
        for x in 0..10_000u64 {
            s.observe(x);
        }
        // Query mid-stream: still calibrated to the current prefix.
        let med = s.median().unwrap();
        assert!(med < 10_000);
    }

    #[test]
    fn heavy_hitter_sketch_contract() {
        let mut s = RobustHeavyHitterSketch::new(LN_U, 0.1, 0.06, 0.02, 4);
        let n = 30_000u64;
        for i in 0..n {
            // 20% of the stream is 42; the rest distinct.
            s.observe(if i % 5 == 0 { 42 } else { 1000 + i });
        }
        let report = s.report();
        assert!(report.iter().any(|h| h.item == 42), "missed the 20% hitter");
        // Nothing below alpha - eps = 4% may appear; distinct items are ~0%.
        for h in &report {
            assert_eq!(h.item, 42, "spurious report {h:?}");
        }
        assert!((s.density(&42) - 0.2).abs() < 0.05);
    }

    #[test]
    fn sketch_snapshots_resume_bit_identically() {
        use crate::engine::snapshot::SnapshotCodec;
        let stream: Vec<u64> = (0..40_000).map(|i| i * 7 % 100_000).collect();
        let mut q_whole = RobustQuantileSketch::<u64>::new(LN_U, 0.1, 0.05, 6);
        let mut q_half = RobustQuantileSketch::<u64>::new(LN_U, 0.1, 0.05, 6);
        q_whole.observe_batch(&stream);
        q_half.observe_batch(&stream[..13_000]);
        let mut q = RobustQuantileSketch::<u64>::restore(&q_half.save()).unwrap();
        q.observe_batch(&stream[13_000..]);
        assert_eq!(q.sample(), q_whole.sample());
        assert_eq!(q.guarantee(), q_whole.guarantee());
        assert_eq!(q.median(), q_whole.median());

        let mut h_whole = RobustHeavyHitterSketch::<u64>::new(LN_U, 0.1, 0.06, 0.02, 8);
        let mut h_half = RobustHeavyHitterSketch::<u64>::new(LN_U, 0.1, 0.06, 0.02, 8);
        h_whole.observe_batch(&stream);
        h_half.observe_batch(&stream[..13_000]);
        let mut h = RobustHeavyHitterSketch::<u64>::restore(&h_half.save()).unwrap();
        h.observe_batch(&stream[13_000..]);
        assert_eq!(h.sample(), h_whole.sample());
        assert_eq!(h.contract(), h_whole.contract());
    }

    #[test]
    #[should_panic(expected = "need 0 < eps < alpha")]
    fn heavy_hitter_rejects_bad_contract() {
        let _ = RobustHeavyHitterSketch::<u64>::new(LN_U, 0.05, 0.05, 0.01, 1);
    }
}
