//! The adversarial games of the paper's Section 2 (Figures 1 and 2).
//!
//! [`AdaptiveGame`] is the paper's `AdaptiveGame`: `n` rounds in which the
//! adversary, shown the sampler state `σ_{i−1}`, submits `x_i`; at the end
//! the sample is judged against the full stream. [`ContinuousAdaptiveGame`]
//! is the `ContinuousAdaptiveGame` variant in which the sample must be an
//! ε-approximation of **every prefix** `X_i`.
//!
//! Runners are generic over the sampler, the adversary, and (for judging)
//! the set system, and can stream per-round trace records to a callback so
//! that the martingale experiments can reconstruct the paper's `Z_i^R`
//! processes without the game core knowing about them.

use crate::adversary::{Adversary, RoundContext};
use crate::approx::DiscrepancyReport;
use crate::sampler::{Observation, StreamSampler};
use crate::set_system::SetSystem;

/// Result of one play of the (non-continuous) adaptive game.
#[derive(Debug, Clone)]
pub struct GameOutcome<T> {
    /// The stream `X = (x_1, …, x_n)` the adversary produced.
    pub stream: Vec<T>,
    /// The final sample `S = σ_n`.
    pub sample: Vec<T>,
    /// Total insertions performed by the sampler (`k'` of Theorem 1.3).
    pub total_stored: usize,
}

impl<T> GameOutcome<T> {
    /// Judge the outcome against a set system: the paper's step 3
    /// ("output 1 if S is an ε-representative sample of X").
    pub fn discrepancy<S: SetSystem<T> + ?Sized>(&self, system: &S) -> DiscrepancyReport {
        system.max_discrepancy(&self.stream, &self.sample)
    }

    /// Whether the sampler won the game at accuracy `eps`.
    pub fn sampler_wins<S: SetSystem<T> + ?Sized>(&self, system: &S, eps: f64) -> bool {
        self.discrepancy(system).value <= eps
    }
}

/// Per-round trace record passed to [`AdaptiveGame::run_traced`] observers.
#[derive(Debug)]
pub struct RoundTrace<'a, T> {
    /// Round number `i`, 1-based.
    pub round: usize,
    /// The element the adversary submitted this round.
    pub element: &'a T,
    /// What the sampler did with it.
    pub outcome: &'a Observation<T>,
    /// The sample σ_i *after* the update.
    pub sample: &'a [T],
}

/// The paper's `AdaptiveGame` (Figure 1): a fixed-length duel between a
/// sampler and an adaptive adversary.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveGame {
    n: usize,
}

impl AdaptiveGame {
    /// A game of `n` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "game length must be positive");
        Self { n }
    }

    /// Stream length `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Play the game to completion.
    pub fn run<T, Smp, Adv>(&self, sampler: &mut Smp, adversary: &mut Adv) -> GameOutcome<T>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T> + ?Sized,
    {
        self.run_traced(sampler, adversary, |_| {})
    }

    /// Play the game, invoking `trace` after every round. This is how the
    /// martingale experiments record `|R ∩ S_i|` without the game knowing
    /// about ranges.
    pub fn run_traced<T, Smp, Adv>(
        &self,
        sampler: &mut Smp,
        adversary: &mut Adv,
        mut trace: impl FnMut(RoundTrace<'_, T>),
    ) -> GameOutcome<T>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T> + ?Sized,
    {
        let mut stream: Vec<T> = Vec::with_capacity(self.n);
        let mut last_outcome: Option<Observation<T>> = None;
        for i in 1..=self.n {
            let x = {
                let ctx = RoundContext {
                    round: i,
                    n: self.n,
                    sample: sampler.sample(),
                    last_outcome: last_outcome.as_ref(),
                    history: &stream,
                };
                adversary.next(&ctx)
            };
            let outcome = sampler.observe(x.clone());
            stream.push(x);
            trace(RoundTrace {
                round: i,
                element: stream.last().expect("just pushed"),
                outcome: &outcome,
                sample: sampler.sample(),
            });
            last_outcome = Some(outcome);
        }
        GameOutcome {
            stream,
            sample: sampler.sample().to_vec(),
            total_stored: sampler.total_stored(),
        }
    }
}

/// Result of one play of the continuous game.
#[derive(Debug, Clone)]
pub struct ContinuousOutcome<T> {
    /// The stream the adversary produced.
    pub stream: Vec<T>,
    /// The final sample.
    pub sample: Vec<T>,
    /// Maximum discrepancy over all *checked* prefixes.
    pub max_prefix_discrepancy: f64,
    /// Earliest checked round at which the ε budget was exceeded, if the
    /// game was run with an `eps` to enforce.
    pub first_violation: Option<usize>,
    /// `(round, discrepancy)` at every checked prefix.
    pub checkpoints: Vec<(usize, f64)>,
}

/// The paper's `ContinuousAdaptiveGame` (Figure 2): the sample must be an
/// ε-approximation of the stream **at every step**, not only at the end.
///
/// Judging every prefix exactly costs `O(n)` discrepancy evaluations; the
/// runner therefore accepts a set of check rounds. Use
/// [`ContinuousAdaptiveGame::every_round`] for the letter-exact Figure 2
/// semantics, or [`ContinuousAdaptiveGame::geometric`] for the Theorem 1.4
/// checkpoint grid `i_{j+1} = ⌊(1+ε/4)·i_j⌋` (plus a configurable stride of
/// intermediate checks).
#[derive(Debug, Clone)]
pub struct ContinuousAdaptiveGame {
    n: usize,
    check_rounds: Vec<usize>,
}

impl ContinuousAdaptiveGame {
    /// Check the ε-approximation property after every round.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn every_round(n: usize) -> Self {
        assert!(n > 0, "game length must be positive");
        Self {
            n,
            check_rounds: (1..=n).collect(),
        }
    }

    /// Check at the Theorem 1.4 geometric checkpoints `k, ⌊(1+ε/4)k⌋, …, n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or `eps ∉ (0,1)`.
    pub fn geometric(n: usize, k: usize, eps: f64) -> Self {
        assert!(n > 0 && k > 0, "n and k must be positive");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        let mut rounds = Vec::new();
        let mut i = k.min(n);
        loop {
            rounds.push(i);
            if i >= n {
                break;
            }
            let next = ((i as f64) * (1.0 + eps / 4.0)).floor() as usize;
            i = next.max(i + 1).min(n);
        }
        Self {
            n,
            check_rounds: rounds,
        }
    }

    /// Check at explicitly given rounds (sorted + deduplicated internally).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any round is outside `1..=n`.
    pub fn at_rounds(n: usize, mut rounds: Vec<usize>) -> Self {
        assert!(n > 0, "game length must be positive");
        rounds.sort_unstable();
        rounds.dedup();
        assert!(
            rounds.iter().all(|&r| (1..=n).contains(&r)),
            "check rounds must lie in 1..=n"
        );
        Self {
            n,
            check_rounds: rounds,
        }
    }

    /// The rounds at which the prefix property is evaluated.
    pub fn check_rounds(&self) -> &[usize] {
        &self.check_rounds
    }

    /// Play the game. `eps` is used only to populate
    /// [`ContinuousOutcome::first_violation`]; the game always runs to the
    /// end so the full trajectory is observable (the paper's game halts at
    /// the first violation, which corresponds to reading `first_violation`).
    pub fn run<T, Smp, Adv, Sys>(
        &self,
        sampler: &mut Smp,
        adversary: &mut Adv,
        system: &Sys,
        eps: f64,
    ) -> ContinuousOutcome<T>
    where
        T: Clone,
        Smp: StreamSampler<T>,
        Adv: Adversary<T> + ?Sized,
        Sys: SetSystem<T>,
    {
        let mut stream: Vec<T> = Vec::with_capacity(self.n);
        let mut last_outcome: Option<Observation<T>> = None;
        let mut max_disc = 0.0f64;
        let mut first_violation = None;
        let mut checkpoints = Vec::with_capacity(self.check_rounds.len());
        let mut check_iter = self.check_rounds.iter().copied().peekable();
        for i in 1..=self.n {
            let x = {
                let ctx = RoundContext {
                    round: i,
                    n: self.n,
                    sample: sampler.sample(),
                    last_outcome: last_outcome.as_ref(),
                    history: &stream,
                };
                adversary.next(&ctx)
            };
            let outcome = sampler.observe(x.clone());
            stream.push(x);
            last_outcome = Some(outcome);
            if check_iter.peek() == Some(&i) {
                check_iter.next();
                let d = system.max_discrepancy(&stream, sampler.sample()).value;
                checkpoints.push((i, d));
                if d > max_disc {
                    max_disc = d;
                }
                if d > eps && first_violation.is_none() {
                    first_violation = Some(i);
                }
            }
        }
        ContinuousOutcome {
            stream,
            sample: sampler.sample().to_vec(),
            max_prefix_discrepancy: max_disc,
            first_violation,
            checkpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{RandomAdversary, StaticAdversary};
    use crate::sampler::{BernoulliSampler, ReservoirSampler};
    use crate::set_system::PrefixSystem;

    #[test]
    fn game_produces_full_stream() {
        let game = AdaptiveGame::new(500);
        let mut sampler = ReservoirSampler::with_seed(20, 1);
        let mut adv = RandomAdversary::new(1000, 2);
        let out = game.run(&mut sampler, &mut adv);
        assert_eq!(out.stream.len(), 500);
        assert_eq!(out.sample.len(), 20);
        assert!(out.total_stored >= 20);
    }

    #[test]
    fn static_adversary_replays_exact_stream() {
        let fixed: Vec<u64> = (0..100).map(|i| i * 7 % 91).collect();
        let game = AdaptiveGame::new(100);
        let mut sampler = BernoulliSampler::with_seed(0.3, 4);
        let mut adv = StaticAdversary::new(fixed.clone());
        let out = game.run(&mut sampler, &mut adv);
        assert_eq!(out.stream, fixed);
    }

    #[test]
    fn trace_sees_every_round_in_order() {
        let game = AdaptiveGame::new(50);
        let mut sampler = ReservoirSampler::with_seed(5, 9);
        let mut adv = RandomAdversary::new(64, 3);
        let mut rounds = Vec::new();
        game.run_traced(&mut sampler, &mut adv, |t| {
            rounds.push(t.round);
            assert!(t.sample.len() <= 5);
        });
        assert_eq!(rounds, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_is_subsequence_of_stream() {
        let game = AdaptiveGame::new(300);
        let mut sampler = ReservoirSampler::with_seed(25, 5);
        let mut adv = RandomAdversary::new(10_000, 6);
        let out = game.run(&mut sampler, &mut adv);
        for s in &out.sample {
            assert!(out.stream.contains(s));
        }
    }

    #[test]
    fn geometric_checkpoints_cover_k_and_n() {
        let g = ContinuousAdaptiveGame::geometric(10_000, 100, 0.2);
        let rounds = g.check_rounds();
        assert_eq!(*rounds.first().unwrap(), 100);
        assert_eq!(*rounds.last().unwrap(), 10_000);
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
        // Growth is ≈ (1+eps/4): round count is Θ(ln(n/k)/eps).
        // Integer flooring advances slightly slower than the pure geometric
        // sequence, so allow a small additive slack.
        let expect = ((10_000f64 / 100.0).ln() / (1.05f64).ln()).ceil() as usize;
        assert!(rounds.len() <= expect + 8, "{} checkpoints", rounds.len());
    }

    #[test]
    fn continuous_game_flags_violations() {
        // A reservoir of size 1 cannot track prefixes of a uniform stream
        // at eps=0.05: some checked prefix must violate.
        let n = 2000;
        let g = ContinuousAdaptiveGame::geometric(n, 50, 0.2);
        let mut sampler = ReservoirSampler::with_seed(1, 7);
        let mut adv = RandomAdversary::new(1 << 20, 8);
        let sys = PrefixSystem::new(1 << 20);
        let out = g.run(&mut sampler, &mut adv, &sys, 0.05);
        assert!(out.first_violation.is_some());
        assert!(out.max_prefix_discrepancy > 0.05);
    }

    #[test]
    fn continuous_game_with_huge_reservoir_never_violates() {
        // k = n: the reservoir is the stream, every prefix is exact.
        let n = 500;
        let g = ContinuousAdaptiveGame::every_round(n);
        let mut sampler = ReservoirSampler::with_seed(n, 7);
        let mut adv = RandomAdversary::new(1024, 9);
        let sys = PrefixSystem::new(1024);
        let out = g.run(&mut sampler, &mut adv, &sys, 1e-9);
        assert_eq!(out.first_violation, None);
        assert!(out.max_prefix_discrepancy < 1e-9);
        assert_eq!(out.checkpoints.len(), n);
    }

    #[test]
    #[should_panic(expected = "check rounds must lie in 1..=n")]
    fn at_rounds_validates() {
        let _ = ContinuousAdaptiveGame::at_rounds(10, vec![0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::adversary::RandomAdversary;
    use crate::sampler::{BernoulliSampler, BottomKSampler, ReservoirSampler};
    use proptest::prelude::*;

    /// The multiset-subsequence invariant (paper §2, rule 3): the sample is
    /// always a subsequence of the stream — every sampled occurrence maps
    /// to a distinct stream occurrence.
    fn is_sub_multiset(sample: &[u64], stream: &[u64]) -> bool {
        let mut counts = std::collections::BTreeMap::new();
        for x in stream {
            *counts.entry(*x).or_insert(0usize) += 1;
        }
        for s in sample {
            match counts.get_mut(s) {
                Some(c) if *c > 0 => *c -= 1,
                _ => return false,
            }
        }
        true
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Reservoir: sample is a sub-multiset, size = min(k, n), counters
        /// consistent — for arbitrary (n, k, seeds).
        #[test]
        fn reservoir_game_invariants(
            n in 1usize..400,
            k in 1usize..50,
            seed in 0u64..1000,
        ) {
            let mut sampler = ReservoirSampler::with_seed(k, seed);
            let mut adv = RandomAdversary::new(1 << 16, seed ^ 0xABCD);
            let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
            prop_assert_eq!(out.stream.len(), n);
            prop_assert_eq!(out.sample.len(), k.min(n));
            prop_assert!(out.total_stored >= out.sample.len());
            prop_assert!(out.total_stored <= n);
            prop_assert!(is_sub_multiset(&out.sample, &out.stream));
        }

        /// Bernoulli: sample preserves stream order and is a sub-multiset.
        #[test]
        fn bernoulli_game_invariants(
            n in 1usize..400,
            p in 0.0f64..=1.0,
            seed in 0u64..1000,
        ) {
            let mut sampler = BernoulliSampler::with_seed(p, seed);
            let mut adv = RandomAdversary::new(1 << 16, seed ^ 0x1234);
            let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
            prop_assert!(is_sub_multiset(&out.sample, &out.stream));
            prop_assert_eq!(out.total_stored, out.sample.len());
            // Order preservation: the sample must appear in stream order.
            let mut idx = 0usize;
            for s in &out.sample {
                while idx < out.stream.len() && out.stream[idx] != *s {
                    idx += 1;
                }
                prop_assert!(idx < out.stream.len(), "sample element out of order");
                idx += 1;
            }
        }

        /// Bottom-k behaves like the reservoir at the game level.
        #[test]
        fn bottom_k_game_invariants(
            n in 1usize..300,
            k in 1usize..40,
            seed in 0u64..1000,
        ) {
            let mut sampler = BottomKSampler::with_seed(k, seed);
            let mut adv = RandomAdversary::new(1 << 16, seed ^ 0x5678);
            let out = AdaptiveGame::new(n).run(&mut sampler, &mut adv);
            prop_assert_eq!(out.sample.len(), k.min(n));
            prop_assert!(is_sub_multiset(&out.sample, &out.stream));
        }

        /// Continuous-game checkpoints are a subset of 1..=n, increasing,
        /// and the reported sup equals the max over checkpoints.
        #[test]
        fn continuous_game_checkpoint_consistency(
            n in 10usize..200,
            k in 1usize..20,
            seed in 0u64..500,
        ) {
            let game = ContinuousAdaptiveGame::geometric(n, k, 0.3);
            let sys = crate::set_system::PrefixSystem::new(1 << 16);
            let mut sampler = ReservoirSampler::with_seed(k, seed);
            let mut adv = RandomAdversary::new(1 << 16, seed ^ 0x9999);
            let out = game.run(&mut sampler, &mut adv, &sys, 0.3);
            prop_assert!(out.checkpoints.windows(2).all(|w| w[0].0 < w[1].0));
            let max_ck = out
                .checkpoints
                .iter()
                .map(|&(_, d)| d)
                .fold(0.0f64, f64::max);
            prop_assert!((out.max_prefix_discrepancy - max_ck).abs() < 1e-12);
        }
    }
}
