//! The paper's distributed-database vignette (§1.2): queries are routed to
//! K servers at random, so each server's workload is a Bernoulli(1/K)
//! sample of the query stream. If the stream is long enough — Theorem 1.2
//! with p = 1/K — every server's view truthfully represents the global
//! workload, so per-server query optimizers see the right statistics even
//! as the workload drifts. Also demonstrates the coordinator pattern:
//! per-site reservoirs merged into one global sample over the wire.
//!
//! ```sh
//! cargo run --release --example distributed_load_balancer
//! ```

use robust_sampling::core::approx::prefix_discrepancy;
use robust_sampling::core::engine::StreamSummary;
use robust_sampling::core::set_system::{PrefixSystem, SetSystem};
use robust_sampling::distributed::{merge_sites, run_threaded, Site, SiteSnapshot};
use robust_sampling::streamgen;

fn main() {
    let k_servers = 8;
    let universe = 1u64 << 20;
    let system = PrefixSystem::new(universe);
    let eps = 0.08;
    let delta = 0.02;
    // Stream length so every server's Bernoulli(1/K) view meets Thm 1.2
    // at confidence delta/K:
    let n = (10.0
        * k_servers as f64
        * (system.ln_cardinality() + (4.0 * k_servers as f64 / delta).ln())
        / (eps * eps))
        .ceil() as usize;
    println!("K = {k_servers} servers, eps = {eps}: need n >= {n} queries; running n = {n}");

    // A drifting workload (the risky case the paper worries about).
    let stream = streamgen::two_phase(n, universe, 11);

    // Threaded router: each worker keeps its substream + a local reservoir.
    let views = run_threaded(&stream, k_servers, 512, 23);
    println!("\nper-server workload representativeness (prefix discrepancy vs global):");
    let mut worst = 0.0f64;
    for (j, (substream, reservoir)) in views.iter().enumerate() {
        let d = prefix_discrepancy(&stream, substream).value;
        worst = worst.max(d);
        println!(
            "  server {j}: received {:>6} queries, discrepancy {:.4}, local reservoir {}",
            substream.len(),
            d,
            reservoir.len()
        );
    }
    println!(
        "worst server: {:.4} <= eps = {eps}: {} — \"is random sampling a \
         risk?\" answered in the negative",
        worst,
        worst <= eps
    );

    // Coordinator merge: ship (count, reservoir) snapshots, fuse into one
    // global sample of the union.
    println!("\ncoordinator merge of per-site reservoirs:");
    let mut snaps = Vec::new();
    for (j, (substream, _)) in views.iter().enumerate() {
        let mut site = Site::new(512, 100 + j as u64);
        site.ingest_batch(substream);
        let frame = site.snapshot();
        println!("  site {j}: snapshot frame {} bytes", frame.len());
        snaps.push(SiteSnapshot::decode(frame).expect("valid frame"));
    }
    let merged = merge_sites(&snaps, 1024, 31);
    let d = prefix_discrepancy(&stream, &merged).value;
    println!(
        "merged sample |S| = {}, discrepancy vs global stream = {:.4} (<= eps: {})",
        merged.len(),
        d,
        d <= eps
    );
}
