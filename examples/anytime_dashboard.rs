//! An "anytime dashboard" built from the self-sizing sketch types: state
//! the guarantee (ε, δ, universe), feed the stream, query whenever —
//! latencies percentiles plus top talkers, valid against adaptive inputs
//! (Corollaries 1.5 and 1.6 packaged as `RobustQuantileSketch` and
//! `RobustHeavyHitterSketch`).
//!
//! ```sh
//! cargo run --release --example anytime_dashboard
//! ```

use robust_sampling::core::{RobustHeavyHitterSketch, RobustQuantileSketch, StreamSummary};
use robust_sampling::streamgen;

fn main() {
    // Telemetry: request latencies (µs, up to 2^20) and client ids.
    let ln_universe = 20.0 * std::f64::consts::LN_2;
    let mut latency = RobustQuantileSketch::<u64>::new(ln_universe, 0.05, 0.01, 1);
    let mut talkers = RobustHeavyHitterSketch::<u64>::new(ln_universe, 0.05, 0.03, 0.01, 2);
    println!(
        "sized for (eps=0.05, delta=0.01): latency reservoir k = {}, talkers k = {}",
        latency.capacity(),
        talkers.capacity()
    );

    // Morning traffic: fast responses, one chatty client.
    let lat_morning = streamgen::bell(60_000, 1 << 16, 3);
    let ids_morning = streamgen::zipf(60_000, 1 << 20, 1.3, 4);
    latency.ingest_batch(&lat_morning);
    talkers.ingest_batch(&ids_morning);
    println!("\n-- 10:00 ({} requests so far) --", latency.observed());
    report(&latency, &talkers);

    // Afternoon incident: latencies shift 8x upward (distribution drift —
    // exactly the situation where a frozen sample would lie).
    let lat_evening: Vec<u64> = streamgen::bell(60_000, 1 << 19, 5);
    let ids_evening = streamgen::zipf(60_000, 1 << 20, 1.1, 6);
    latency.ingest_batch(&lat_evening);
    talkers.ingest_batch(&ids_evening);
    println!("\n-- 16:00 ({} requests so far) --", latency.observed());
    report(&latency, &talkers);
    println!(
        "\nthe p99 moved with the incident: reservoir sampling stays\n\
         calibrated to everything-seen-so-far, and the Theorem 1.2 size\n\
         keeps it honest even if the traffic adapts to the sampler."
    );
}

fn report(latency: &RobustQuantileSketch<u64>, talkers: &RobustHeavyHitterSketch<u64>) {
    for q in [0.5, 0.9, 0.99] {
        println!(
            "  p{:<4} latency ~ {:>7} us",
            (q * 100.0) as u32,
            latency.quantile(q).unwrap()
        );
    }
    let hot = talkers.report();
    match hot.first() {
        Some(h) => println!(
            "  top talker: client {} at ~{:.1}% of traffic ({} flagged)",
            h.item,
            h.sample_density * 100.0,
            hot.len()
        ),
        None => println!("  no client above the 5% threshold"),
    }
}
