//! The paper's opening story, end to end: an adaptive adversary watches a
//! sampler's memory and bisects the value space so that the final sample
//! is *exactly the smallest elements of the stream* — the median estimate
//! collapses to the far-left tail. Then the defense: the same game against
//! a Theorem 1.2-sized reservoir over a finite universe, which the
//! adversary cannot budge.
//!
//! ```sh
//! cargo run --release --example adaptive_median_attack
//! ```

use robust_sampling::core::adversary::{BisectionAdversary, QuantileHunterAdversary};
use robust_sampling::core::approx::prefix_discrepancy;
use robust_sampling::core::bounds;
use robust_sampling::core::game::AdaptiveGame;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler};
use robust_sampling::core::set_system::{PrefixSystem, SetSystem};

fn main() {
    let n = 3_000;

    // --- The attack (infinite universe: exact dyadic rationals) ---------
    println!("== attack: bisection adversary vs Bernoulli p = 0.02, n = {n} ==");
    let mut adversary = BisectionAdversary::new();
    let mut sampler = BernoulliSampler::with_seed(0.02, 1);
    let out = AdaptiveGame::new(n).run(&mut sampler, &mut adversary);

    let mut sorted = out.stream.clone();
    sorted.sort();
    let s = out.sample.len();
    let mut sample_sorted = out.sample.clone();
    sample_sorted.sort();
    println!("sampled {s} of {n} elements");
    println!(
        "sample == the {s} smallest stream elements: {}",
        sample_sorted == sorted[..s]
    );
    // The sample median's rank in the true stream: catastrophically low.
    let sample_median = &sample_sorted[s / 2];
    let rank = sorted.iter().filter(|v| *v <= sample_median).count();
    println!(
        "sample median has true rank {rank}/{n} = {:.4} (should be ~0.5) — \
         the adversary pinned it to the tail",
        rank as f64 / n as f64
    );
    println!(
        "prefix discrepancy = {:.4}\n",
        prefix_discrepancy(&out.stream, &out.sample).value
    );

    // --- The defense (finite universe, Theorem 1.2 sizing) --------------
    let universe = 1u64 << 30;
    let system = PrefixSystem::new(universe);
    let eps = 0.1;
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps, 0.01);
    println!("== defense: adaptive hunter vs reservoir k = {k} over U = 2^30 ==");
    let mut adversary = QuantileHunterAdversary::new(universe, 2);
    let mut sampler = ReservoirSampler::with_seed(k, 3);
    let out = AdaptiveGame::new(n).run(&mut sampler, &mut adversary);
    let d = out.discrepancy(&system);
    println!(
        "adaptive adversary achieved discrepancy {:.4} <= eps = {eps}: {}",
        d.value,
        d.value <= eps
    );
    let mut sorted = out.stream.clone();
    sorted.sort_unstable();
    let true_median = sorted[n / 2];
    let mut sample_sorted = out.sample.clone();
    sample_sorted.sort_unstable();
    let est_median = sample_sorted[sample_sorted.len() / 2];
    let est_rank = sorted.iter().filter(|&&v| v <= est_median).count() as f64 / n as f64;
    println!(
        "true median {true_median}, sample median {est_median} \
         (true rank of estimate: {est_rank:.3}) — the guarantee held"
    );
}
