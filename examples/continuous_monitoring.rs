//! Continuous monitoring (Theorem 1.4): a dashboard that must show
//! accurate quantiles of everything-seen-so-far at *every* moment, not
//! just at end-of-day — the `ContinuousAdaptiveGame` with the checkpoint
//! sizing, against a drifting workload.
//!
//! ```sh
//! cargo run --release --example continuous_monitoring
//! ```

use robust_sampling::core::adversary::StaticAdversary;
use robust_sampling::core::bounds;
use robust_sampling::core::game::ContinuousAdaptiveGame;
use robust_sampling::core::sampler::ReservoirSampler;
use robust_sampling::core::set_system::{PrefixSystem, SetSystem};
use robust_sampling::streamgen;

fn main() {
    let n = 50_000;
    let universe = 1u64 << 20;
    let system = PrefixSystem::new(universe);
    let eps = 0.1;
    let delta = 0.05;

    let k_plain = bounds::reservoir_k_robust(system.ln_cardinality(), eps, delta);
    let k_cont = bounds::reservoir_k_continuous(system.ln_cardinality(), eps, delta, n);
    let t = bounds::continuous_checkpoint_count(k_cont, eps, n);
    println!(
        "end-of-stream guarantee needs k = {k_plain}; every-prefix guarantee \
         needs k = {k_cont} ({t} geometric checkpoints — ln ln n overhead, \
         not ln n)"
    );

    // Workload that drifts: low-valued queries in the morning, high-valued
    // in the afternoon. A frozen sample would be stale by noon.
    let stream = streamgen::two_phase(n, universe, 5);

    let game = ContinuousAdaptiveGame::geometric(n, k_cont, eps);
    let mut sampler = ReservoirSampler::with_seed(k_cont, 1);
    let mut adversary = StaticAdversary::new(stream);
    let out = game.run(&mut sampler, &mut adversary, &system, eps);

    println!(
        "\nchecked {} prefixes; sup discrepancy over time = {:.4} (eps = {eps})",
        out.checkpoints.len(),
        out.max_prefix_discrepancy
    );
    match out.first_violation {
        None => println!("the dashboard was accurate at every checkpoint ✓"),
        Some(i) => println!("violated at round {i} ✗"),
    }

    // Show the trajectory at a few checkpoints.
    println!("\n  round     discrepancy");
    for (i, d) in out
        .checkpoints
        .iter()
        .step_by((out.checkpoints.len() / 10).max(1))
    {
        println!("  {i:>7}   {d:.4}");
    }
    println!(
        "\nnote the spike risk right after the distribution shift at round \
         {} — the Theorem 1.4 size absorbs it.",
        n / 2
    );
}
