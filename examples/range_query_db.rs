//! A tiny "analytics DB" answering 2-D range-count queries from a robust
//! sample (paper §1.2, "Range queries"): points stream in, only a sample
//! is retained, and every axis-aligned box query is answered within ±εn —
//! all boxes simultaneously, adversary-proof at the Theorem 1.2 size.
//!
//! ```sh
//! cargo run --release --example range_query_db
//! ```

use robust_sampling::core::bounds;
use robust_sampling::core::engine::StreamSummary;
use robust_sampling::core::estimators::range_count;
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::core::set_system::{AxisBoxSystem, SetSystem};
use robust_sampling::streamgen;

fn main() {
    let n = 120_000;
    let m = 64u64; // grid side: positions are (x, y) in {0..63}^2

    // Click-position stream: two hot regions plus uniform noise.
    let mut stream: Vec<[u64; 2]> =
        streamgen::clustered_points(n * 7 / 10, m, &[(12, 50), (48, 16)], 6, 3)
            .into_iter()
            .map(|(x, y)| [x as u64, y as u64])
            .collect();
    stream.extend(streamgen::uniform_grid_points(n - stream.len(), m, 4));

    // Size the sample: ln|R| = 2·ln(m(m+1)/2) for axis boxes in 2-D.
    let system = AxisBoxSystem::<2>::new(m);
    let eps = 0.02;
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps, 0.01);
    println!(
        "grid {m}x{m}: ln|R| = {:.1}, k = {k} retained of n = {n} points ({:.2}%)",
        system.ln_cardinality(),
        100.0 * k as f64 / n as f64
    );

    let mut sampler = ReservoirSampler::with_seed(k, 9);
    sampler.ingest_batch(&stream);

    // Answer some queries and compare with ground truth.
    let queries: [([u64; 2], [u64; 2], &str); 4] = [
        ([8, 44], [18, 56], "hot region A"),
        ([42, 10], [54, 22], "hot region B"),
        ([0, 0], [31, 31], "bottom-left quadrant"),
        ([60, 60], [63, 63], "cold corner"),
    ];
    println!(
        "\n{:<22} {:>10} {:>10} {:>10} {:>8}",
        "query box", "true", "estimate", "abs err", "<= eps*n"
    );
    for (lo, hi, label) in queries {
        let in_box =
            |p: &[u64; 2]| (lo[0]..=hi[0]).contains(&p[0]) && (lo[1]..=hi[1]).contains(&p[1]);
        let truth = stream.iter().filter(|p| in_box(p)).count() as f64;
        let est = range_count(sampler.sample(), n, in_box);
        let err = (est - truth).abs();
        println!(
            "{:<22} {:>10.0} {:>10.0} {:>10.0} {:>8}",
            label,
            truth,
            est,
            err,
            err <= eps * n as f64
        );
    }

    // The theorem is stronger: EVERY box is within eps simultaneously.
    let report = system.max_discrepancy(&stream, sampler.sample());
    println!(
        "\nexact max over ALL {:.1e} boxes: {:.4} (eps = {eps}) — witness {}",
        (m as f64 * (m as f64 + 1.0) / 2.0).powi(2),
        report.value,
        report.witness.as_deref().unwrap_or("-")
    );
}
