//! Quickstart: size a robust sampler from the theorem, stream data through
//! it, verify the ε-approximation guarantee, and use the sample for
//! quantiles and heavy hitters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use robust_sampling::core::bounds;
use robust_sampling::core::engine::StreamSummary;
use robust_sampling::core::estimators::{heavy_hitters, SampleQuantiles};
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::core::set_system::{PrefixSystem, SetSystem};
use robust_sampling::streamgen;

fn main() {
    // The data: 100k elements over a 2^20 universe, Zipf-skewed (so there
    // are real heavy hitters and skewed quantiles).
    let n = 100_000;
    let universe = 1u64 << 20;
    let stream = streamgen::zipf(n, universe, 1.05, 42);

    // 1. Pick the guarantee: (ε, δ) = (0.05, 0.01) over prefix ranges.
    //    Theorem 1.2: k = 2·(ln|R| + ln(2/δ)) / ε² — robust against ANY
    //    adaptive adversary, so certainly against this static stream.
    let eps = 0.05;
    let delta = 0.01;
    let system = PrefixSystem::new(universe);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps, delta);
    println!(
        "ln|R| = {:.1}  =>  reservoir capacity k = {k}",
        system.ln_cardinality()
    );

    // 2. Stream the data through the sampler — one batched ingest call
    //    (the engine's gap-skipping hot path; identical sample to an
    //    element-wise observe loop with the same seed).
    let mut sampler = ReservoirSampler::with_seed(k, 7);
    sampler.ingest_batch(&stream);

    // 3. Verify the guarantee (you wouldn't do this in production — the
    //    theorem does it for you — but this is a quickstart).
    let report = system.max_discrepancy(&stream, sampler.sample());
    println!(
        "max prefix discrepancy = {:.4} (eps = {eps}) -> {}",
        report.value,
        if report.value <= eps {
            "eps-approximation ✓"
        } else {
            "VIOLATION"
        }
    );

    // 4. Use the sample: all quantiles at once (Corollary 1.5)…
    let sq = SampleQuantiles::new(sampler.sample(), n);
    println!("estimated median = {}", sq.median());
    println!("estimated p99    = {}", sq.quantile(0.99));

    // …and heavy hitters (Corollary 1.6): report density ≥ α − ε', with
    // the tolerance ε' strictly inside (0, α).
    let alpha = 0.02;
    let hitters = heavy_hitters(sampler.sample(), alpha, alpha / 2.0);
    println!("elements with density >= {alpha} (top 5):");
    for h in hitters.iter().take(5) {
        println!(
            "  value {:>8}  sample density {:.4}",
            h.item, h.sample_density
        );
    }
}
