//! Heavy hitters three ways on a skewed click stream (Corollary 1.6):
//! a robust sample, Misra–Gries, and SpaceSaving — same stream, same
//! (α, ε) target, different machines.
//!
//! ```sh
//! cargo run --release --example robust_heavy_hitters
//! ```

use robust_sampling::core::bounds;
use robust_sampling::core::engine::StreamSummary;
use robust_sampling::core::estimators::heavy_hitters;
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::core::set_system::{SetSystem, SingletonSystem};
use robust_sampling::sketches::misra_gries::MisraGries;
use robust_sampling::sketches::space_saving::SpaceSaving;
use robust_sampling::streamgen;

fn main() {
    let n = 200_000;
    let universe = 1u64 << 24;
    // A Zipf(1.2) click stream: a few items dominate.
    let stream = streamgen::zipf(n, universe, 1.2, 7);

    let alpha = 0.05; // report items above 5%
    let eps = 0.03; // tolerance band: nothing below 2% may be reported
    let eps_prime = eps / 3.0; // the Corollary 1.6 rule

    // --- Robust sample -----------------------------------------------------
    let system = SingletonSystem::new(universe);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps_prime, 0.01);
    let mut sampler = ReservoirSampler::with_seed(k, 1);
    sampler.ingest_batch(&stream);
    let from_sample = heavy_hitters(sampler.sample(), alpha, eps_prime);

    // --- Deterministic baselines -------------------------------------------
    let counters = (1.0 / eps).ceil() as usize;
    let mut mg = MisraGries::new(counters);
    let mut ss = SpaceSaving::new(counters);
    // Deterministic baselines through the same engine interface.
    for summary in [&mut mg as &mut dyn StreamSummary<u64>, &mut ss] {
        summary.ingest_batch(&stream);
    }

    // --- Ground truth --------------------------------------------------------
    let mut sorted = stream.clone();
    sorted.sort_unstable();
    let true_density = |v: u64| {
        let lo = sorted.partition_point(|&x| x < v);
        let hi = sorted.partition_point(|&x| x <= v);
        (hi - lo) as f64 / n as f64
    };

    println!("stream: n = {n}, Zipf(1.2); target alpha = {alpha}, eps = {eps}");
    println!("sample k = {k}; MG/SS counters = {counters}\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "item", "true", "sample", "misra-gries", "space-saving"
    );
    for h in from_sample.iter().take(8) {
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            h.item,
            true_density(h.item),
            h.sample_density,
            mg.estimate(h.item) as f64 / n as f64,
            ss.estimate(h.item) as f64 / n as f64,
        );
    }
    println!(
        "\nwhy sampling? the same reservoir simultaneously answers quantiles,\n\
         range counts, … — and with the Theorem 1.2 size it stays valid even\n\
         if the click stream adapts to what the sampler has stored."
    );
}
