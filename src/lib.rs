//! # robust-sampling — facade crate
//!
//! Re-exports the whole adversarially-robust-sampling suite under one
//! roof, and hosts the repository-level examples and integration tests.
//!
//! * [`core`] — samplers, set systems, adaptive games, adversaries,
//!   estimators, and the theorem-derived sample-size bounds;
//! * [`sketches`] — deterministic/randomized streaming-summary baselines;
//! * [`streamgen`] — seeded workload generators;
//! * [`distributed`] — the paper's distributed load-balancing scenario;
//! * [`service`] — the concurrent serving layer: epoch-snapshot queries,
//!   the TCP line protocol, checkpoint/restore.
//!
//! See the repository `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-reproduction results.

pub use robust_sampling_core as core;
pub use robust_sampling_distributed as distributed;
pub use robust_sampling_service as service;
pub use robust_sampling_sketches as sketches;
pub use robust_sampling_streamgen as streamgen;

/// The repository `README.md`, compiled as doctests: every `rust` code
/// block in it must build and run under `cargo test --doc`, so the
/// README's examples can never drift from the API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
