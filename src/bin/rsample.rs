//! `rsample` — a command-line robust sampler.
//!
//! Reads one `u64` per line from stdin, maintains a Theorem 1.2-sized
//! reservoir, and on EOF prints quantiles and heavy hitters with the
//! requested `(ε, δ)` guarantee. Because the sizing is the adaptive one,
//! the report is trustworthy even if whatever generates the input adapts
//! to this process's memory.
//!
//! ```sh
//! seq 1 100000 | shuf | cargo run --release --bin rsample -- --eps 0.05
//! ```
//!
//! Options (all optional):
//!
//! ```text
//!   --eps <f>             accuracy, default 0.05
//!   --delta <f>           failure probability, default 0.01
//!   --universe-bits <n>   ln|U| = n*ln 2, default 64
//!   --alpha <f>           heavy-hitter threshold, default 0.05
//!   --seed <n>            RNG seed, default 42
//!   --quantiles <list>    comma-separated, default 0.01,0.25,0.5,0.75,0.99
//! ```

use std::io::BufRead;

use robust_sampling::core::{RobustHeavyHitterSketch, RobustQuantileSketch, StreamSummary};

struct Options {
    eps: f64,
    delta: f64,
    universe_bits: u32,
    alpha: f64,
    seed: u64,
    quantiles: Vec<f64>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        eps: 0.05,
        delta: 0.01,
        universe_bits: 64,
        alpha: 0.05,
        seed: 42,
        quantiles: vec![0.01, 0.25, 0.5, 0.75, 0.99],
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--eps" => opts.eps = value(i)?.parse().map_err(|e| format!("--eps: {e}"))?,
            "--delta" => opts.delta = value(i)?.parse().map_err(|e| format!("--delta: {e}"))?,
            "--universe-bits" => {
                opts.universe_bits = value(i)?
                    .parse()
                    .map_err(|e| format!("--universe-bits: {e}"))?
            }
            "--alpha" => opts.alpha = value(i)?.parse().map_err(|e| format!("--alpha: {e}"))?,
            "--seed" => opts.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--quantiles" => {
                opts.quantiles = value(i)?
                    .split(',')
                    .map(|q| {
                        q.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("--quantiles: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            other => return Err(format!("unknown option {other}")),
        }
        i += 2;
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rsample: {e}");
            std::process::exit(2);
        }
    };
    let ln_universe = opts.universe_bits as f64 * std::f64::consts::LN_2;
    let mut quantiles =
        RobustQuantileSketch::<u64>::new(ln_universe, opts.eps, opts.delta, opts.seed);
    let hh_eps = (opts.alpha * 0.9).min(opts.eps);
    let mut hitters = RobustHeavyHitterSketch::<u64>::new(
        ln_universe,
        opts.alpha,
        hh_eps,
        opts.delta,
        opts.seed ^ 0x5DEECE66D,
    );
    eprintln!(
        "rsample: eps = {}, delta = {}, reservoirs k = {} / {}",
        opts.eps,
        opts.delta,
        quantiles.capacity(),
        hitters.capacity()
    );

    // Parse into chunks and feed the summaries through the engine's
    // batched ingest path: the reservoirs skip-sample each chunk in
    // O(stored) work instead of per-line virtual calls.
    const CHUNK: usize = 64 * 1024;
    let stdin = std::io::stdin();
    let mut bad_lines = 0usize;
    let mut buf: Vec<u64> = Vec::with_capacity(CHUNK);
    let mut flush = |buf: &mut Vec<u64>| {
        quantiles.ingest_batch(buf);
        hitters.ingest_batch(buf);
        buf.clear();
    };
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("rsample: read error: {e}");
                break;
            }
        };
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        match t.parse::<u64>() {
            Ok(v) => {
                buf.push(v);
                if buf.len() == CHUNK {
                    flush(&mut buf);
                }
            }
            Err(_) => bad_lines += 1,
        }
    }
    flush(&mut buf);
    let n = quantiles.observed();
    if n == 0 {
        eprintln!("rsample: no input");
        std::process::exit(1);
    }
    println!("n = {n} ({bad_lines} unparseable lines skipped)");
    println!(
        "quantiles (each within ±{}·n rank error w.p. {}):",
        opts.eps,
        1.0 - opts.delta
    );
    for &q in &opts.quantiles {
        if let Some(v) = quantiles.quantile(q) {
            println!("  p{:<5} {v}", q * 100.0);
        }
    }
    let report = hitters.report();
    println!(
        "heavy hitters (density >= {} reported, none below {}):",
        opts.alpha,
        opts.alpha - hh_eps
    );
    if report.is_empty() {
        println!("  (none)");
    }
    for h in report.iter().take(20) {
        println!("  {:>20}  ~{:.2}%", h.item, h.sample_density * 100.0);
    }
}
