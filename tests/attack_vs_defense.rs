//! Integration: the lower-bound attacks (Theorem 1.3 and the §1 intro
//! attack) versus the upper-bound sizing (Theorem 1.2) — the paper's two
//! halves must be consistent when run against each other.

use robust_sampling::core::adversary::{
    BisectionAdversary, DiscreteAttackAdversary, GeneralizedBisectionAdversary,
};
use robust_sampling::core::approx::prefix_discrepancy;
use robust_sampling::core::bounds;
use robust_sampling::core::dyadic::Dyadic;
use robust_sampling::core::game::AdaptiveGame;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler};

#[test]
fn attack_beats_undersized_but_loses_to_sized_discrete() {
    // Undersized: k = 1 over u64 — within the attack's precision budget.
    let n = 200;
    let universe = 1u64 << 62;
    let mut wins = 0;
    for seed in 0..6 {
        let mut adv = DiscreteAttackAdversary::for_reservoir(1, n, universe);
        let mut s = ReservoirSampler::with_seed(1, seed);
        let out = AdaptiveGame::new(n).run(&mut s, &mut adv);
        if !adv.exhausted() && prefix_discrepancy(&out.stream, &out.sample).value > 0.5 {
            wins += 1;
        }
    }
    assert!(wins >= 3, "attack should win vs k=1: {wins}/6");

    // Sized: the same attack against a Theorem 1.2 reservoir must exhaust
    // (it cannot fit the splits into 43 nats of u64 precision).
    let ln_r = (universe as f64).ln();
    let k = bounds::reservoir_k_robust(ln_r, 0.2, 0.1);
    let mut adv = DiscreteAttackAdversary::for_reservoir(k, n, universe);
    let mut s = ReservoirSampler::with_seed(k, 9);
    let out = AdaptiveGame::new(n).run(&mut s, &mut adv);
    let d = prefix_discrepancy(&out.stream, &out.sample).value;
    assert!(
        adv.exhausted() || d <= 0.2,
        "sized reservoir should not lose: exhausted={}, d={d}",
        adv.exhausted()
    );
}

#[test]
fn dyadic_attack_beats_any_finite_k_in_proportion() {
    // Over the infinite-precision universe the attack discrepancy is
    // ≈ 1 − k'/n for every k — increasing k only helps linearly, which is
    // the Thm 1.3 'no finite VC-style sizing helps' message.
    let n = 2_000;
    for k in [4usize, 32, 128] {
        let mut adv = GeneralizedBisectionAdversary::for_reservoir(k, n);
        let mut s = ReservoirSampler::with_seed(k, 3);
        let out = AdaptiveGame::new(n).run(&mut s, &mut adv);
        let d = prefix_discrepancy(&out.stream, &out.sample).value;
        let kp = out.total_stored;
        let predicted = 1.0 - kp as f64 / n as f64;
        assert!(
            (d - predicted).abs() < 0.05,
            "k={k}: discrepancy {d} far from predicted {predicted}"
        );
        assert!(d > 0.5, "k={k}: attack failed entirely ({d})");
    }
}

#[test]
fn bisection_attack_median_is_pinned_to_tail() {
    let n = 1_000;
    let mut adv = BisectionAdversary::new();
    let mut s = BernoulliSampler::with_seed(0.03, 7);
    let out = AdaptiveGame::new(n).run(&mut s, &mut adv);
    assert!(!out.sample.is_empty());
    let mut sorted: Vec<Dyadic> = out.stream.clone();
    sorted.sort();
    let mut sample_sorted = out.sample.clone();
    sample_sorted.sort();
    let median = &sample_sorted[sample_sorted.len() / 2];
    let rank = sorted.iter().filter(|v| *v <= median).count();
    // The sample median's true rank is at most |S|/n — deep in the tail.
    assert!(
        rank <= out.sample.len(),
        "median rank {rank} not pinned below |S| = {}",
        out.sample.len()
    );
}

#[test]
fn attack_cannot_touch_exact_storage() {
    // k >= n: the reservoir keeps everything; discrepancy is identically 0
    // against any adversary, including the dyadic attack.
    let n = 500;
    let mut adv = GeneralizedBisectionAdversary::for_reservoir(n, n);
    let mut s = ReservoirSampler::with_seed(n, 1);
    let out = AdaptiveGame::new(n).run(&mut s, &mut adv);
    assert_eq!(prefix_discrepancy(&out.stream, &out.sample).value, 0.0);
}

#[test]
fn thresholds_are_consistent_with_upper_bounds() {
    // Thm 1.2's k always exceeds Thm 1.3's attackable ceiling — the two
    // theorems never contradict (the paper's "nearly matching" bounds).
    for n in [1_000usize, 100_000] {
        for ln_r in [20.0f64, 200.0, 2_000.0] {
            let k_robust = bounds::reservoir_k_robust(ln_r, 0.3, 0.3) as f64;
            let k_attack = bounds::attack_reservoir_k_max(ln_r, n);
            assert!(
                k_robust > k_attack,
                "contradiction at n={n}, ln_r={ln_r}: {k_robust} <= {k_attack}"
            );
        }
    }
}
