//! The attack registry's contracts, property-tested across seeds:
//!
//! * **Per-seed determinism** — every registered attack, rebuilt from the
//!   same `(n, universe, seed)` and duelled against the same defense,
//!   replays the identical stream (the adversary-side sibling of the
//!   source-determinism law in `tests/source_equivalence.rs`).
//! * **Control equivalence** — the non-adaptive replay controls emit
//!   element-for-element the workload source they wrap, so whatever gap
//!   the matrix shows between control and adaptive rows is pure
//!   adaptivity, not generator drift.
//! * **Port fidelity** — the `bisection` strategy reproduces the legacy
//!   `DiscreteAttackAdversary` stream exactly, and the `collider`
//!   strategy reproduces the E13 phantom-heavy-hitter outcome.

use proptest::prelude::*;
use robust_sampling::core::adversary::DiscreteAttackAdversary;
use robust_sampling::core::attack::{
    attack, descriptor, registry, AttackAdversary, BisectionAttack, ColliderAttack, Duel,
    ObservableDefense,
};
use robust_sampling::core::engine::StreamSummary;
use robust_sampling::core::game::AdaptiveGame;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler};
use robust_sampling::core::set_system::{PrefixSystem, SetSystem};
use robust_sampling::sketches::count_min::CountMin;
use robust_sampling::streamgen;

#[test]
fn registry_names_are_unique_and_round_trip() {
    for (i, a) in registry().iter().enumerate() {
        for b in &registry()[i + 1..] {
            assert_ne!(a.name, b.name);
        }
        assert_eq!(attack(a.name).unwrap().name, a.name);
        let built = a.build(64, 1 << 12, 0);
        assert_eq!(descriptor(&built).name, a.name);
    }
    assert!(attack("no-such-attack").is_none());
    assert!(registry().len() >= 6, "acceptance: >= 6 registered attacks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every registered attack is deterministic per seed against both a
    /// randomized and a deterministic defense.
    #[test]
    fn every_attack_is_deterministic_per_seed(
        n in 64usize..1_200,
        seed in 0u64..10_000,
        defense_seed in 0u64..10_000,
    ) {
        let universe = 1u64 << 16;
        for spec in registry() {
            let against_reservoir = || {
                let mut d = ReservoirSampler::<u64>::with_seed(16, defense_seed);
                let mut a = spec.build(n, universe, seed);
                Duel::new(n, universe).run(&mut d, &mut a).stream
            };
            prop_assert_eq!(
                against_reservoir(),
                against_reservoir(),
                "{} vs reservoir not deterministic",
                spec.name
            );
            let against_count_min = || {
                let mut d = CountMin::for_guarantee(0.01, 0.05, defense_seed);
                let mut a = spec.build(n, universe, seed);
                Duel::new(n, universe).run(&mut d, &mut a).stream
            };
            prop_assert_eq!(
                against_count_min(),
                against_count_min(),
                "{} vs count-min not deterministic",
                spec.name
            );
        }
    }

    /// The replay controls are element-identical to the workload sources
    /// they wrap — against any defense, since they never read state.
    #[test]
    fn replay_controls_equal_their_workload_sources(
        n in 1usize..2_000,
        universe_log in 4u32..30,
        seed in 0u64..10_000,
    ) {
        let universe = 1u64 << universe_log;
        for (attack_name, workload_name) in
            [("replay-uniform", "uniform"), ("replay-zipf", "zipf")]
        {
            let spec = attack(attack_name).expect("registered control");
            prop_assert!(!spec.adaptive);
            let mut d = ReservoirSampler::<u64>::with_seed(8, 1);
            let mut a = spec.build(n, universe, seed);
            let out = Duel::new(n, universe).run(&mut d, &mut a);
            let expect = streamgen::materialize(
                streamgen::workload(workload_name)
                    .expect("registered workload")
                    .source(n, universe, seed),
            );
            prop_assert_eq!(&out.stream, &expect, "{} drifted", attack_name);
        }
    }

    /// The bisection port emits the exact stream of the legacy Figure 3
    /// adversary (same sampler coins), including the exhaustion flag.
    #[test]
    fn bisection_port_matches_legacy_figure3(
        n in 50usize..400,
        sampler_seed in 0u64..1_000,
    ) {
        let universe = 1u64 << 62;
        let p = 0.01f64;
        let p_prime = p.max((n as f64).ln() / n as f64);

        let mut legacy = DiscreteAttackAdversary::for_bernoulli(p, n, universe);
        let mut s1 = BernoulliSampler::with_seed(p, sampler_seed);
        let game = AdaptiveGame::new(n).run(&mut s1, &mut legacy);

        let mut ported = BisectionAttack::with_split(p_prime, universe);
        let mut s2 = BernoulliSampler::with_seed(p, sampler_seed);
        let duel = Duel::new(n, universe).run(&mut s2, &mut ported);

        prop_assert_eq!(&game.stream, &duel.stream);
        prop_assert_eq!(legacy.exhausted(), ported.exhausted());
    }
}

#[test]
fn collider_reproduces_the_e13_phantom_outcome() {
    // The ported linear-sketch attack: the victim is never sent, yet
    // Count-Min certifies it heavy; a theorem-sized reservoir duelled by
    // the identical strategy (same seed → same background+decoy stream
    // only if the defense exposes colliders — a reservoir does not, so
    // the attack degrades to uniform noise) stays representative.
    let n = 6_000;
    let universe = 1u64 << 20;
    let spec = attack("collider").unwrap();

    let mut cm = CountMin::for_guarantee(0.005, 0.01, 17);
    let mut a1 = spec.build(n, universe, 4);
    let out = Duel::new(n, universe).run(&mut cm, &mut a1);
    let victim = ColliderAttack::victim(universe);
    assert_eq!(out.stream.iter().filter(|&&x| x == victim).count(), 0);
    assert!(cm.estimate(victim) as f64 >= 0.05 * n as f64);

    let mut reservoir = ReservoirSampler::<u64>::with_seed(1_500, 17);
    let mut a2 = spec.build(n, universe, 4);
    let out = Duel::new(n, universe).run(&mut reservoir, &mut a2);
    let system = PrefixSystem::new(universe);
    let d = system.max_discrepancy(&out.stream, &out.final_sample).value;
    assert!(
        d <= 0.1,
        "sampler discrepancy {d} under the collider stream"
    );
}

// (The eviction-pump saturation/bound contract is unit-tested next to
// the Misra-Gries defense impl in crates/sketches/src/defense.rs.)

#[test]
fn attacks_run_inside_the_continuous_game_via_the_bridge() {
    // The prefix-mass strategy in its intended habitat: the Figure 2
    // every-prefix game, reached through the AttackAdversary bridge. An
    // undersized reservoir must violate the eps budget at some prefix.
    use robust_sampling::core::game::ContinuousAdaptiveGame;
    let n = 3_000;
    let universe = 1u64 << 16;
    let system = PrefixSystem::new(universe);
    let game = ContinuousAdaptiveGame::geometric(n, 64, 0.2);
    let mut sampler = ReservoirSampler::<u64>::with_seed(8, 3);
    let mut adv = AttackAdversary::new(
        attack("prefix-mass").unwrap().build(n, universe, 9),
        universe,
    );
    let out = game.run(&mut sampler, &mut adv, &system, 0.2);
    assert!(
        out.first_violation.is_some(),
        "k = 8 should violate eps = 0.2 somewhere (max {})",
        out.max_prefix_discrepancy
    );
}

#[test]
fn duel_visible_state_matches_defense_sample() {
    // ObservableDefense::visible is the duel's state feed; for samplers
    // it must be exactly the sample the game layer exposes.
    let mut r = ReservoirSampler::<u64>::with_seed(12, 5);
    StreamSummary::ingest_batch(&mut r, &(0..500u64).collect::<Vec<_>>());
    assert_eq!(
        ObservableDefense::visible(&r),
        robust_sampling::core::sampler::StreamSampler::sample(&r).to_vec()
    );
}
