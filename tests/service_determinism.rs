//! Property tests for the serving layer's two determinism contracts:
//!
//! 1. **Served ≡ offline** — a [`SummaryService`] driven with a fixed
//!    frame schedule publishes a final snapshot **bit-identical** to the
//!    offline [`ShardedSummary::ingest_batch`] run of the same stream
//!    (same shard count, same base seed), for arbitrary workloads, shard
//!    counts, and frame split points.
//! 2. **Checkpoint transparency** — `save → restore → continue` is
//!    indistinguishable from the uninterrupted run, per seed, at the
//!    codec level (every [`SnapshotCodec`] summary) and at the service
//!    level (checkpoint taken at an arbitrary frame boundary).
//! 3. **Off-path publishing is bit-exact and read-your-writes** — epochs
//!    are merged on the publisher thread, concurrently with later
//!    frames, yet every cadence-triggered snapshot equals the offline
//!    sharded prefix merge at exactly that frame boundary, and is
//!    visible to the very next query after the triggering frame.

use proptest::prelude::*;
use robust_sampling::core::engine::{ShardedSummary, SnapshotCodec, StreamSummary};
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler, StreamSampler};
use robust_sampling::core::sketch::{RobustHeavyHitterSketch, RobustQuantileSketch};
use robust_sampling::service::SummaryService;
use robust_sampling::streamgen;

/// Split `stream` into frames whose sizes cycle through `splits`.
fn frames<'a>(stream: &'a [u64], splits: &[usize]) -> Vec<&'a [u64]> {
    let mut rest = stream;
    let mut out = Vec::new();
    let mut i = 0;
    while !rest.is_empty() {
        let take = if splits.is_empty() {
            rest.len()
        } else {
            (splits[i % splits.len()] % rest.len()).max(1)
        };
        out.push(&rest[..take]);
        rest = &rest[take..];
        i += 1;
    }
    out
}

fn workload_stream(which: usize, n: usize, seed: u64) -> Vec<u64> {
    let registry = streamgen::registry();
    registry[which % registry.len()].materialize(n, 1 << 16, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A service fed any frame schedule of any registry workload ends
    /// bit-identical to the offline sharded engine: same shard states,
    /// same merged snapshot sample, same item count.
    #[test]
    fn service_final_snapshot_equals_offline_sharded_run(
        which in 0usize..16,
        shards in 1usize..5,
        k in 1usize..128,
        seed in 0u64..1_000,
        n in 1usize..6_000,
        splits in proptest::collection::vec(1usize..700, 0..6),
        epoch_every in 1usize..4_096,
    ) {
        let stream = workload_stream(which, n, seed.wrapping_add(17));
        let mut offline = ShardedSummary::new(shards, seed, |_, s| {
            ReservoirSampler::<u64>::with_seed(k, s)
        });
        let mut service = SummaryService::start(shards, seed, epoch_every, |_, s| {
            ReservoirSampler::<u64>::with_seed(k, s)
        });
        for frame in frames(&stream, &splits) {
            offline.ingest_batch(frame);
            service.ingest_frame(frame);
        }
        service.publish();
        let snap = service.snapshot();
        let merged = offline.merged();
        prop_assert_eq!(snap.items(), stream.len());
        prop_assert_eq!(snap.summary().sample(), merged.sample());
        prop_assert_eq!(snap.summary().observed(), stream.len());
    }

    /// Publish-during-ingest at an arbitrary cadence: every epoch the
    /// service triggers mid-schedule is merged off the ingest path,
    /// racing the frames that follow it — yet the snapshot the next
    /// query observes is bit-identical to the offline sharded prefix
    /// merge at exactly the triggering frame's boundary. Non-triggering
    /// frames are deliberately not queried, so captures genuinely
    /// overlap subsequent batch ingestion.
    #[test]
    fn cadence_publishes_during_ingest_match_offline_prefixes(
        which in 0usize..16,
        shards in 1usize..5,
        seed in 0u64..500,
        n in 32usize..4_000,
        splits in proptest::collection::vec(1usize..400, 0..5),
        epoch_every in 1usize..1_500,
    ) {
        let stream = workload_stream(which, n, seed.wrapping_add(29));
        let mut offline = ShardedSummary::new(shards, seed, |_, s| {
            ReservoirSampler::<u64>::with_seed(40, s)
        });
        let mut service = SummaryService::start(shards, seed, epoch_every, |_, s| {
            ReservoirSampler::<u64>::with_seed(40, s)
        });
        let mut routed = 0usize;
        let mut since = 0usize;
        let mut expected_epoch = 0u64;
        for frame in frames(&stream, &splits) {
            offline.ingest_batch(frame);
            routed += frame.len();
            since += frame.len();
            service.ingest_frame(frame);
            if since >= epoch_every {
                since = 0;
                expected_epoch += 1;
                let snap = service.snapshot();
                prop_assert_eq!(snap.epoch(), expected_epoch);
                prop_assert_eq!(snap.items(), routed);
                let merged = offline.merged();
                prop_assert_eq!(snap.summary().sample(), merged.sample());
            }
        }
    }

    /// Codec round trip mid-stream for every checkpointable summary:
    /// save → restore → continue ≡ uninterrupted, element for element.
    #[test]
    fn snapshot_codec_roundtrip_continues_identically(
        seed in 0u64..1_000,
        n in 2usize..5_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let stream: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37) % 60_000).collect();
        let cut = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);

        macro_rules! check {
            ($build:expr, $sample:expr) => {{
                let sample_of = $sample;
                let mut whole = $build;
                let mut half = $build;
                whole.ingest_batch(&stream);
                half.ingest_batch(&stream[..cut]);
                let bytes = half.save();
                let mut resumed = SnapshotCodec::restore(&bytes).unwrap();
                // The restored summary is indistinguishable now...
                prop_assert_eq!(sample_of(&half), sample_of(&resumed));
                // ...and stays indistinguishable after more stream.
                resumed.ingest_batch(&stream[cut..]);
                prop_assert_eq!(sample_of(&whole), sample_of(&resumed));
                prop_assert_eq!(whole.items_seen(), resumed.items_seen());
            }};
        }

        check!(
            BernoulliSampler::<u64>::with_seed(0.05, seed),
            |s: &BernoulliSampler<u64>| s.sample().to_vec()
        );
        check!(
            ReservoirSampler::<u64>::with_seed(64, seed),
            |s: &ReservoirSampler<u64>| s.sample().to_vec()
        );
        check!(
            RobustQuantileSketch::<u64>::with_capacity(48, 0.1, 0.05, seed),
            |s: &RobustQuantileSketch<u64>| s.sample().to_vec()
        );
        check!(
            RobustHeavyHitterSketch::<u64>::new(14.0, 0.1, 0.06, 0.05, seed),
            |s: &RobustHeavyHitterSketch<u64>| s.sample().to_vec()
        );
        check!(
            ShardedSummary::new(3, seed, |_, s| ReservoirSampler::<u64>::with_seed(32, s)),
            |s: &ShardedSummary<ReservoirSampler<u64>>| {
                let mut all = Vec::new();
                for shard in s.shards() {
                    all.extend_from_slice(shard.sample());
                }
                all
            }
        );
    }

    /// Service-level checkpoint at an arbitrary frame boundary: the
    /// restored service finishes the schedule with every published
    /// answer identical to the uninterrupted run's.
    #[test]
    fn service_checkpoint_restore_changes_no_answer(
        which in 0usize..16,
        shards in 1usize..4,
        seed in 0u64..500,
        n in 64usize..4_000,
        splits in proptest::collection::vec(1usize..500, 1..5),
        epoch_every in 1usize..2_048,
    ) {
        let stream = workload_stream(which, n, seed.wrapping_add(3));
        let all_frames = frames(&stream, &splits);
        let cut = all_frames.len() / 2;
        let build = || SummaryService::start(shards, seed, epoch_every, |_, s| {
            ReservoirSampler::<u64>::with_seed(48, s)
        });
        let mut whole = build();
        let mut prefix = build();
        for frame in &all_frames[..cut] {
            whole.ingest_frame(frame);
            prefix.ingest_frame(frame);
        }
        let bytes = prefix.checkpoint();
        drop(prefix);
        let mut resumed = SummaryService::<ReservoirSampler<u64>>::restore(&bytes).unwrap();
        prop_assert_eq!(resumed.items_routed(), whole.items_routed());
        for frame in &all_frames[cut..] {
            whole.ingest_frame(frame);
            resumed.ingest_frame(frame);
        }
        whole.publish();
        resumed.publish();
        let (a, b) = (whole.snapshot(), resumed.snapshot());
        prop_assert_eq!(a.epoch(), b.epoch());
        prop_assert_eq!(a.items(), b.items());
        prop_assert_eq!(a.summary().sample(), b.summary().sample());
        prop_assert_eq!(a.quantile(0.5), b.quantile(0.5));
        prop_assert_eq!(a.count(7), b.count(7));
        prop_assert_eq!(a.ks_uniform(1 << 16), b.ks_uniform(1 << 16));
        prop_assert_eq!(a.heavy(0.05), b.heavy(0.05));
    }
}

/// Non-property pin: the publish cadence is part of the checkpoint, so a
/// restore never shifts epoch boundaries.
#[test]
fn checkpoint_preserves_publish_cadence_phase() {
    let mut whole = SummaryService::start(2, 9, 1_000, |_, s| {
        ReservoirSampler::<u64>::with_seed(32, s)
    });
    let mut prefix = SummaryService::start(2, 9, 1_000, |_, s| {
        ReservoirSampler::<u64>::with_seed(32, s)
    });
    let stream: Vec<u64> = (0..5_500).collect();
    // 700-element frames: the 5th publish lands mid-schedule for both.
    for frame in stream[..2_100].chunks(700) {
        whole.ingest_frame(frame);
        prefix.ingest_frame(frame);
    }
    let restored_bytes = prefix.checkpoint();
    drop(prefix);
    let mut resumed = SummaryService::<ReservoirSampler<u64>>::restore(&restored_bytes).unwrap();
    for frame in stream[2_100..].chunks(700) {
        whole.ingest_frame(frame);
        resumed.ingest_frame(frame);
    }
    assert_eq!(whole.snapshot().epoch(), resumed.snapshot().epoch());
    assert_eq!(whole.snapshot().items(), resumed.snapshot().items());
    assert_eq!(
        whole.snapshot().summary().sample(),
        resumed.snapshot().summary().sample()
    );
}
