//! Integration: the §1.2 application pipelines, run through the full
//! public API — quantiles (Cor 1.5), heavy hitters (Cor 1.6), range
//! queries, center points, clustering — and their agreement with the
//! deterministic baselines in the sketches crate.

use robust_sampling::core::bounds;
use robust_sampling::core::estimators::{
    center_point, cluster_medoids, heavy_hitters, heavy_hitters_errors, kcenter_cost, range_count,
    tukey_depth, SampleQuantiles,
};
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::core::set_system::{
    AxisBoxSystem, HalfplaneSystem, PrefixSystem, SetSystem, SingletonSystem,
};
use robust_sampling::sketches::gk::GkSummary;
use robust_sampling::sketches::misra_gries::MisraGries;
use robust_sampling::streamgen;

#[test]
fn corollary_15_quantiles_within_eps_of_gk() {
    let n = 30_000;
    let universe = 1u64 << 20;
    let eps = 0.05;
    let stream = streamgen::bell(n, universe, 3);

    let system = PrefixSystem::new(universe);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps, 0.01);
    let mut sampler = ReservoirSampler::with_seed(k, 1);
    let mut gk = GkSummary::new(eps / 2.0);
    for &x in &stream {
        sampler.observe(x);
        gk.observe(x);
    }
    let sq = SampleQuantiles::new(sampler.sample(), n);
    let mut sorted = stream.clone();
    sorted.sort_unstable();
    for &q in &[0.1, 0.25, 0.5, 0.75, 0.9] {
        let true_v = sorted[((q * n as f64) as usize).min(n - 1)];
        let sample_v = *sq.quantile(q);
        let gk_v = gk.quantile(q).unwrap();
        // Both estimates' ranks must be within eps*n of the true rank.
        for (label, v) in [("sample", sample_v), ("gk", gk_v)] {
            let rank = sorted.partition_point(|&x| x <= v) as f64;
            let true_rank = sorted.partition_point(|&x| x <= true_v) as f64;
            assert!(
                (rank - true_rank).abs() <= eps * n as f64 + 1.0,
                "{label} q={q}: rank {rank} vs {true_rank}"
            );
        }
    }
}

#[test]
fn corollary_16_pipeline_has_no_misses_or_spurious() {
    let n = 40_000;
    let universe = 1u64 << 24;
    let alpha = 0.05;
    let eps = 0.03;
    let stream = streamgen::zipf(n, universe, 1.2, 9);

    let system = SingletonSystem::new(universe);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps / 3.0, 0.02);
    let mut sampler = ReservoirSampler::with_seed(k, 2);
    for &x in &stream {
        sampler.observe(x);
    }
    let report = heavy_hitters(sampler.sample(), alpha, eps / 3.0);
    let (missed, spurious) = heavy_hitters_errors(&stream, &report, alpha, eps);
    assert!(missed.is_empty(), "missed hitters: {missed:?}");
    assert!(spurious.is_empty(), "spurious reports: {spurious:?}");

    // Agreement with Misra-Gries on the reported set's top element.
    let mut mg = MisraGries::new((2.0 / eps).ceil() as usize);
    for &x in &stream {
        mg.observe(x);
    }
    let top = report.first().expect("zipf stream has hitters");
    assert!(
        mg.estimate(top.item) > 0,
        "MG does not track the sample's top hitter"
    );
}

#[test]
fn range_queries_within_eps_for_every_box() {
    let n = 15_000;
    let m = 24u64;
    let eps = 0.1;
    let system = AxisBoxSystem::<2>::new(m);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps, 0.02);
    let stream: Vec<[u64; 2]> = streamgen::uniform_grid_points(n, m, 4);
    let mut sampler = ReservoirSampler::with_seed(k.min(n), 3);
    for &p in &stream {
        sampler.observe(p);
    }
    // The strong simultaneous guarantee.
    let report = system.max_discrepancy(&stream, sampler.sample());
    assert!(report.value <= eps, "max box discrepancy {}", report.value);
    // And the point-query API agrees with ground truth on a specific box.
    let truth = stream.iter().filter(|p| p[0] < 12 && p[1] < 12).count() as f64;
    let est = range_count(sampler.sample(), n, |p: &[u64; 2]| p[0] < 12 && p[1] < 12);
    assert!((est - truth).abs() <= eps * n as f64);
}

#[test]
fn center_point_transfers_from_sample_to_stream() {
    let n = 10_000;
    let m = 128u64;
    let beta = 0.25;
    let eps = beta / 5.0;
    let system = HalfplaneSystem::new(m, 60);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), eps, 0.02);
    let stream = streamgen::clustered_points(n, m, &[(30, 30), (90, 90), (30, 90)], 14, 5);
    let mut sampler = ReservoirSampler::with_seed(k.min(n / 2), 6);
    for &p in &stream {
        sampler.observe(p);
    }
    let sample = sampler.sample().to_vec();
    assert!(system.max_discrepancy(&stream, &sample).value <= eps);
    let (c, depth_in_sample) = center_point(&sample, 60);
    if depth_in_sample >= 6.0 * beta / 5.0 {
        let depth_in_stream = tukey_depth(&stream, (c.0 as f64, c.1 as f64), 60);
        assert!(
            depth_in_stream >= beta - 1e-9,
            "CEM+96 transfer failed: {depth_in_stream} < {beta}"
        );
    }
}

#[test]
fn clustering_on_sample_extrapolates() {
    let n = 20_000;
    let m = 256u64;
    let centers = [(40i64, 40i64), (200, 40), (120, 210)];
    let stream = streamgen::clustered_points(n, m, &centers, 10, 7);
    let mut sampler = ReservoirSampler::with_seed(400, 8);
    for &p in &stream {
        sampler.observe(p);
    }
    let medoids_sample = cluster_medoids(sampler.sample(), 3);
    let medoids_full = cluster_medoids(&stream, 3);
    let cost_sample = kcenter_cost(&stream, &medoids_sample);
    let cost_full = kcenter_cost(&stream, &medoids_full);
    // The sample-derived clustering costs at most ~2x the full one (both
    // are 2-approximations of the optimum on well-separated blobs).
    assert!(
        cost_sample <= 2.0 * cost_full + 20.0,
        "sample clustering cost {cost_sample} vs full {cost_full}"
    );
}
