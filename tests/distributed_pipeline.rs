//! Integration: the distributed crate against the core guarantees —
//! per-server representativeness under drift, wire-format round trips,
//! and coordinator merges feeding the core estimators.

use robust_sampling::core::approx::prefix_discrepancy;
use robust_sampling::core::estimators::SampleQuantiles;
use robust_sampling::core::set_system::{PrefixSystem, SetSystem};
use robust_sampling::distributed::{merge_sites, run_threaded, LoadBalancer, Site, SiteSnapshot};
use robust_sampling::streamgen;

#[test]
fn all_servers_representative_under_drifting_workload() {
    let k_servers = 4;
    let universe = 1u64 << 20;
    let eps = 0.1;
    let system = PrefixSystem::new(universe);
    let n =
        (10.0 * k_servers as f64 * (system.ln_cardinality() + (4.0 * k_servers as f64 / 0.05).ln())
            / (eps * eps))
            .ceil() as usize;
    let stream = streamgen::two_phase(n, universe, 13);
    let mut lb = LoadBalancer::new(k_servers, 17);
    lb.run(&stream);
    for (j, view) in lb.views().iter().enumerate() {
        let d = prefix_discrepancy(&stream, view).value;
        assert!(d <= eps, "server {j}: discrepancy {d} > {eps}");
    }
}

#[test]
fn threaded_router_conserves_and_balances() {
    let stream = streamgen::zipf(30_000, 1 << 16, 1.1, 3);
    let out = run_threaded(&stream, 6, 64, 21);
    let total: usize = out.iter().map(|(s, _)| s.len()).sum();
    assert_eq!(total, stream.len());
    let mean = stream.len() / 6;
    for (j, (sub, res)) in out.iter().enumerate() {
        assert!(
            (sub.len() as f64 - mean as f64).abs() < 0.15 * mean as f64,
            "server {j} got {} (mean {mean})",
            sub.len()
        );
        assert_eq!(res.len(), 64);
    }
}

#[test]
fn merged_reservoir_feeds_quantile_estimator() {
    // Sites see disjoint shards; the coordinator's merged sample must give
    // accurate global quantiles via the core estimator.
    let universe = 1u64 << 20;
    let per_site = 20_000;
    let mut snaps = Vec::new();
    let mut union = Vec::new();
    for s in 0..5u64 {
        let shard = streamgen::uniform(per_site, universe, 40 + s);
        let mut site = Site::new(400, s);
        for &x in &shard {
            site.observe(x);
        }
        union.extend(shard);
        snaps.push(SiteSnapshot::decode(site.snapshot()).expect("valid frame"));
    }
    let merged = merge_sites(&snaps, 1500, 9);
    let sq = SampleQuantiles::new(&merged, union.len());
    let mut sorted = union.clone();
    sorted.sort_unstable();
    for &q in &[0.25, 0.5, 0.75] {
        let _true_v = sorted[(q * union.len() as f64) as usize];
        let est = *sq.quantile(q);
        let est_rank = sorted.partition_point(|&x| x <= est) as f64 / union.len() as f64;
        assert!(
            (est_rank - q).abs() < 0.05,
            "q={q}: merged estimate rank {est_rank}"
        );
    }
    let _ = prefix_discrepancy(&union, &merged); // exercised above; no panic
}

#[test]
fn snapshot_wire_format_is_stable() {
    let mut site = Site::new(8, 1);
    for x in [5u64, 6, 7] {
        site.observe(x);
    }
    let frame = site.snapshot();
    // 8 (count) + 4 (len) + 3*8 (values).
    assert_eq!(frame.len(), 8 + 4 + 24);
    let snap = SiteSnapshot::decode(frame).unwrap();
    assert_eq!(snap.count, 3);
    let mut sample = snap.sample;
    sample.sort_unstable();
    assert_eq!(sample, vec![5, 6, 7]);
}
