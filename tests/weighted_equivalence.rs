//! The multiplicity contract, pinned across the whole weighted surface:
//! `ingest_weighted(x, w)` must leave every summary in **exactly** the
//! state that `w` consecutive unit ingests of `x` would — same retained
//! elements, same counters, same RNG stream. The properties here check
//! three consequences across arbitrary weighted streams, seeds, and
//! batch split schedules:
//!
//! * **expansion equivalence** — a weighted stream is bit-identical to
//!   its run-length-expanded unit stream, *and stays identical under
//!   continued mixed traffic* (the RNG-stream half of the contract:
//!   a weighted prefix must leave the sampler able to continue
//!   element-wise in lockstep with the expanded run);
//! * **weight 1 is the unit kernel** — an all-ones weighted batch is
//!   bit-identical to the plain `observe_batch` fast path;
//! * **deterministic sketches take the closed form** — Count-Min,
//!   Misra–Gries, and SpaceSaving answer weighted updates exactly as
//!   the repeated unit update would (counter arrays and estimates
//!   compared, not just outputs).
//!
//! Together with the engine-level `WeightedSummary` blanket tests these
//! make "faster but subtly different" weighted paths unrepresentable:
//! any divergence from the expanded transcript fails a property.

use proptest::prelude::*;
use robust_sampling::core::engine::weighted::WeightedSummary;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler, StreamSampler};
use robust_sampling::sketches::count_min::CountMin;
use robust_sampling::sketches::misra_gries::MisraGries;
use robust_sampling::sketches::space_saving::SpaceSaving;

/// Expand a weighted stream into its unit-stream transcript.
fn expand(pairs: &[(u64, u64)]) -> Vec<u64> {
    let mut out = Vec::new();
    for &(x, w) in pairs {
        out.extend(std::iter::repeat_n(x, w as usize));
    }
    out
}

/// A weighted stream whose values exercise collisions (small universe)
/// and whose weights cover the contract's corners: zero (no-op), one
/// (the unit kernel), small runs, and heavy items that dwarf `k` (the
/// gap-jump arm of the samplers).
fn weighted_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(
        (
            0u64..512,
            prop_oneof![Just(0u64), Just(1u64), 2u64..8, 50u64..400],
        ),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reservoir: weighted ingestion ≡ the expanded unit stream, and the
    /// RNG streams stay in lockstep — after the weighted prefix, both
    /// samplers continue element-wise over a shared unit tail and must
    /// still agree bit-for-bit.
    #[test]
    fn reservoir_weighted_matches_expanded_then_streams_on(
        k in 1usize..200,
        seed in 0u64..10_000,
        pairs in weighted_stream(),
        tail in proptest::collection::vec(0u64..512, 0..300),
    ) {
        let mut weighted = ReservoirSampler::with_seed(k, seed);
        weighted.observe_weighted_batch(&pairs);
        let mut unit = ReservoirSampler::with_seed(k, seed);
        unit.observe_batch(&expand(&pairs));
        prop_assert_eq!(weighted.sample(), unit.sample());
        prop_assert_eq!(weighted.observed(), unit.observed());
        prop_assert_eq!(weighted.total_stored(), unit.total_stored());
        // RNG lockstep: continue both on identical unit traffic.
        weighted.observe_batch(&tail);
        unit.observe_batch(&tail);
        prop_assert_eq!(weighted.sample(), unit.sample());
        prop_assert_eq!(weighted.total_stored(), unit.total_stored());
    }

    /// Bernoulli: same two-phase pin — expansion equivalence, then
    /// continued lockstep on a shared unit tail. `p` spans the saturating
    /// tail (tiny p), the interior, and the store-everything `p = 1` arm.
    #[test]
    fn bernoulli_weighted_matches_expanded_then_streams_on(
        p in prop_oneof![Just(1.0f64), Just(0.5f64.powi(20)), 0.001f64..1.0],
        seed in 0u64..10_000,
        pairs in weighted_stream(),
        tail in proptest::collection::vec(0u64..512, 0..300),
    ) {
        let mut weighted = BernoulliSampler::with_seed(p, seed);
        weighted.observe_weighted_batch(&pairs);
        let mut unit = BernoulliSampler::with_seed(p, seed);
        unit.observe_batch(&expand(&pairs));
        prop_assert_eq!(weighted.sample(), unit.sample());
        prop_assert_eq!(weighted.observed(), unit.observed());
        weighted.observe_batch(&tail);
        unit.observe_batch(&tail);
        prop_assert_eq!(weighted.sample(), unit.sample());
        prop_assert_eq!(weighted.total_stored(), unit.total_stored());
    }

    /// Weight 1 *is* the unit kernel: an all-ones weighted batch through
    /// the `WeightedSummary` trait is bit-identical to the plain batched
    /// fast path, for both samplers, under any split schedule.
    #[test]
    fn all_ones_weighted_batch_is_the_unit_kernel(
        k in 1usize..200,
        p in 0.001f64..1.0,
        seed in 0u64..10_000,
        xs in proptest::collection::vec(0u64..512, 0..400),
        split in 1usize..64,
    ) {
        let ones: Vec<(u64, u64)> = xs.iter().map(|&x| (x, 1)).collect();

        let mut wr = ReservoirSampler::with_seed(k, seed);
        for chunk in ones.chunks(split) {
            WeightedSummary::ingest_weighted_batch(&mut wr, chunk);
        }
        let mut ur = ReservoirSampler::with_seed(k, seed);
        ur.observe_batch(&xs);
        prop_assert_eq!(wr.sample(), ur.sample());
        prop_assert_eq!(wr.total_stored(), ur.total_stored());

        let mut wb = BernoulliSampler::with_seed(p, seed);
        for chunk in ones.chunks(split) {
            WeightedSummary::ingest_weighted_batch(&mut wb, chunk);
        }
        let mut ub = BernoulliSampler::with_seed(p, seed);
        ub.observe_batch(&xs);
        prop_assert_eq!(wb.sample(), ub.sample());
        prop_assert_eq!(wb.observed(), ub.observed());
    }

    /// Count-Min: the weighted update is the exact closed form of the
    /// repeated unit update — identical counter array, observed count,
    /// and estimates.
    #[test]
    fn count_min_weighted_is_closed_form_of_repeats(
        depth in 1usize..5,
        width_log in 2u32..10,
        seed in 0u64..10_000,
        pairs in weighted_stream(),
    ) {
        let width = 1usize << width_log;
        let mut weighted = CountMin::with_seed(depth, width, seed);
        for &(x, w) in &pairs {
            weighted.observe_weighted(x, w);
        }
        let mut unit = CountMin::with_seed(depth, width, seed);
        unit.observe_batch(&expand(&pairs));
        prop_assert_eq!(weighted.counters(), unit.counters());
        prop_assert_eq!(weighted.observed(), unit.observed());
        for &(x, _) in pairs.iter().take(16) {
            prop_assert_eq!(weighted.estimate(x), unit.estimate(x));
        }
    }

    /// Misra–Gries and SpaceSaving: the classical weighted update leaves
    /// exactly the repeated-unit state — same estimates for every touched
    /// key, same observed totals, same heavy-hitter sets.
    #[test]
    fn deterministic_counters_weighted_matches_repeats(
        counters in 1usize..32,
        pairs in weighted_stream(),
    ) {
        let expanded = expand(&pairs);

        let mut wmg = MisraGries::new(counters);
        let mut umg = MisraGries::new(counters);
        for &(x, w) in &pairs {
            wmg.observe_weighted(x, w);
        }
        for &x in &expanded {
            umg.observe(x);
        }
        prop_assert_eq!(wmg.observed(), umg.observed());
        for &(x, _) in &pairs {
            prop_assert_eq!(wmg.estimate(x), umg.estimate(x));
        }
        prop_assert_eq!(wmg.heavy_hitters(0.05), umg.heavy_hitters(0.05));

        let mut wss = SpaceSaving::new(counters);
        let mut uss = SpaceSaving::new(counters);
        for &(x, w) in &pairs {
            wss.observe_weighted(x, w);
        }
        for &x in &expanded {
            uss.observe(x);
        }
        prop_assert_eq!(wss.observed(), uss.observed());
        for &(x, _) in &pairs {
            prop_assert_eq!(wss.estimate(x), uss.estimate(x));
        }
        prop_assert_eq!(wss.heavy_hitters(0.05), uss.heavy_hitters(0.05));
    }
}
