//! Allocation gate for the serving data path: after warmup, the pooled
//! ingest path — both the slice form (`ingest_frame`) and the wire form
//! (`ingest_frame_le`) — performs **zero heap allocations** per frame.
//!
//! A counting `#[global_allocator]` wraps the system allocator for this
//! test binary (the counter covers every thread, so the shard workers
//! and the free-list pool are measured too, not just the dealer). The
//! warmup phase circulates every pooled buffer through a full-size
//! stride and fills the shard reservoirs, so all capacities stabilize;
//! the measured window then asserts the allocation counter does not move
//! at all across hundreds of frames.
//!
//! This file holds exactly one test: the counter is global, so a
//! concurrently running sibling test would pollute the measured window.

use robust_sampling_core::sampler::ReservoirSampler;
use robust_sampling_service::SummaryService;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_ingest_performs_zero_heap_allocations() {
    // Cadence effectively off: the measured window isolates the pure
    // ingest path (epoch captures are a per-publish cost by design).
    let mut svc = SummaryService::start(4, 42, usize::MAX, |_, s| {
        ReservoirSampler::with_seed(256, s)
    });
    let frame: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut payload = Vec::with_capacity(8 * frame.len());
    for &v in &frame {
        payload.extend_from_slice(&v.to_le_bytes());
    }

    // Warmup: grow every circulating buffer to full stride size and fill
    // the reservoirs, then quiesce the workers behind a publish barrier
    // so no warmup growth bleeds into the measured window.
    for _ in 0..256 {
        svc.ingest_frame(&frame);
        svc.ingest_frame_le(&payload);
    }
    svc.publish();

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..512 {
        svc.ingest_frame(&frame);
        svc.ingest_frame_le(&payload);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state pooled ingest must not allocate"
    );

    // The gate measured real work: the frames above must be visible.
    svc.publish();
    let snap = svc.snapshot();
    assert_eq!(snap.items(), (256 + 512) * 2 * frame.len());
}
