//! Merge soundness across the engine: a K-way sharded ingest followed by
//! a merge must answer like a single summary over the whole stream —
//! exactly for the linear/key-based summaries (Count-Min, bottom-k),
//! within the summary's error bound for the rest — and merging must be
//! order-insensitive for the deterministic sketches.

use proptest::prelude::*;
use robust_sampling::core::approx::prefix_discrepancy;
use robust_sampling::core::engine::{
    FrequencySummary, MergeableSummary, QuantileSummary, ShardedSummary, StreamSummary,
};
use robust_sampling::core::sampler::{
    BernoulliSampler, BottomKSampler, ReservoirSampler, StreamSampler,
};
use robust_sampling::core::sketch::{RobustHeavyHitterSketch, RobustQuantileSketch};
use robust_sampling::sketches::count_min::CountMin;
use robust_sampling::sketches::gk::GkSummary;
use robust_sampling::sketches::kll::KllSketch;
use robust_sampling::sketches::merge_reduce::MergeReduce;
use robust_sampling::sketches::misra_gries::MisraGries;
use robust_sampling::sketches::space_saving::SpaceSaving;
use robust_sampling::streamgen;

/// K-way shard `stream` into summaries built by `factory`, merge, return.
fn shard_and_merge<S, F>(stream: &[u64], shards: usize, factory: F) -> S
where
    S: MergeableSummary<u64> + Send,
    F: FnMut(usize, u64) -> S,
{
    let mut sharded = ShardedSummary::new(shards, 99, factory);
    sharded.ingest_batch(stream);
    sharded.into_merged()
}

// ---------------------------------------------------------------------------
// Samplers: the merged sample must carry the single-sampler guarantee.
// ---------------------------------------------------------------------------

#[test]
fn sharded_reservoir_matches_single_shard_within_bound() {
    let n = 200_000;
    let stream = streamgen::uniform(n, 1 << 30, 5);
    let k = 512;
    let mut single = ReservoirSampler::with_seed(k, 7);
    single.ingest_batch(&stream);
    let d_single = prefix_discrepancy(&stream, single.sample()).value;
    for shards in [2usize, 4, 8] {
        let merged: ReservoirSampler<u64> = shard_and_merge(&stream, shards, |_, seed| {
            ReservoirSampler::with_seed(k, seed)
        });
        assert_eq!(merged.observed(), n, "K={shards}");
        assert_eq!(merged.sample().len(), k, "K={shards}");
        let d = prefix_discrepancy(&stream, merged.sample()).value;
        // Same error class as the single reservoir: both are ~2/sqrt(k).
        let bound = (2.0 / (k as f64).sqrt()).max(2.0 * d_single);
        assert!(d <= bound, "K={shards}: merged disc {d} > {bound}");
    }
}

#[test]
fn sharded_bernoulli_is_exactly_the_union_of_shard_samples() {
    let n = 100_000;
    let stream = streamgen::uniform(n, 1 << 20, 9);
    let mut sharded = ShardedSummary::new(4, 3, |_, seed| BernoulliSampler::with_seed(0.02, seed));
    sharded.ingest_batch(&stream);
    let expect: Vec<u64> = sharded
        .shards()
        .iter()
        .flat_map(|s| s.sample().iter().copied())
        .collect();
    let merged = sharded.into_merged();
    assert_eq!(merged.sample(), expect.as_slice());
    assert_eq!(merged.observed(), n);
    // Size concentrates around p·n, and the sample stays representative.
    let size = merged.sample().len() as f64;
    assert!((size - 2_000.0).abs() < 300.0, "sample size {size}");
    let d = prefix_discrepancy(&stream, merged.sample()).value;
    assert!(d < 0.05, "merged bernoulli discrepancy {d}");
}

#[test]
fn sharded_bottom_k_equals_global_bottom_k_of_all_keys() {
    // Bottom-k merge is exact: the merged sample is the k elements with
    // the smallest keys across all shards.
    let stream = streamgen::uniform(50_000, 1 << 20, 11);
    let mut sharded = ShardedSummary::new(4, 13, |_, seed| BottomKSampler::with_seed(64, seed));
    sharded.ingest_batch(&stream);
    let mut all: Vec<(f64, u64)> = sharded
        .shards()
        .iter()
        .flat_map(|s| s.keys().iter().copied().zip(s.sample().iter().copied()))
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut expect: Vec<u64> = all[..64].iter().map(|&(_, x)| x).collect();
    let merged = sharded.into_merged();
    let mut got = merged.sample().to_vec();
    expect.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, expect);
    assert_eq!(merged.observed(), 50_000);
}

// ---------------------------------------------------------------------------
// Robust sketches: the (ε, δ) / (α, ε) contracts must survive sharding.
// ---------------------------------------------------------------------------

#[test]
fn sharded_robust_quantiles_answer_within_eps() {
    let n = 120_000u64;
    let eps = 0.1;
    let stream: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
    for shards in [2usize, 4] {
        let mut sharded = ShardedSummary::new(shards, 21, |_, seed| {
            RobustQuantileSketch::<u64>::new(20.0, eps, 0.05, seed)
        });
        sharded.ingest_batch(&stream);
        for q in [0.1, 0.5, 0.9] {
            let v = sharded.estimate_quantile(q).expect("non-empty") as f64;
            // Stream is a permutation of 0..n: true rank of v is v+1.
            let err = (v + 1.0 - q * n as f64).abs() / n as f64;
            assert!(err <= eps, "K={shards} q={q}: rank error {err} > eps");
        }
        let r = sharded.estimate_rank(&(n / 2));
        assert!((r / n as f64 - 0.5).abs() <= eps, "K={shards} rank {r}");
    }
}

#[test]
fn sharded_robust_heavy_hitters_keep_their_contract() {
    let n = 80_000u64;
    // 17 has density 25%; everything else is (almost) distinct.
    let stream: Vec<u64> = (0..n)
        .map(|i| if i % 4 == 0 { 17 } else { 1_000 + i })
        .collect();
    let mut sharded = ShardedSummary::new(4, 33, |_, seed| {
        RobustHeavyHitterSketch::<u64>::new(17.0, 0.1, 0.06, 0.05, seed)
    });
    sharded.ingest_batch(&stream);
    let heavy = sharded.heavy_items(0.1);
    assert!(heavy.iter().any(|&(x, _)| x == 17), "missed the 25% hitter");
    assert!(
        heavy.iter().all(|&(x, _)| x == 17),
        "spurious report: {heavy:?}"
    );
    let c = sharded.estimate_count(&17);
    assert!((c - n as f64 / 4.0).abs() < 0.06 * n as f64, "count {c}");
}

// ---------------------------------------------------------------------------
// Baseline sketches: exactness where promised, bounds everywhere, order
// insensitivity for the deterministic merges.
// ---------------------------------------------------------------------------

#[test]
fn sharded_count_min_is_bit_identical_to_single_sketch() {
    let stream = streamgen::zipf(60_000, 1 << 16, 1.2, 3);
    let mut single = CountMin::with_seed(4, 512, 77);
    single.ingest_batch(&stream);
    // Count-Min needs shared hashes: every shard uses the same seed.
    let merged: CountMin = shard_and_merge(&stream, 8, |_, _| CountMin::with_seed(4, 512, 77));
    assert_eq!(merged.observed(), single.observed());
    for x in (0..1u64 << 16).step_by(257) {
        assert_eq!(merged.estimate(x), single.estimate(x), "item {x}");
    }
}

#[test]
fn count_min_merge_is_order_insensitive() {
    let stream = streamgen::uniform(30_000, 1 << 12, 4);
    let parts: Vec<CountMin> = stream
        .chunks(10_000)
        .map(|c| {
            let mut cm = CountMin::with_seed(4, 256, 5);
            cm.ingest_batch(c);
            cm
        })
        .collect();
    let merge_in = |order: [usize; 3]| {
        let mut m = parts[order[0]].clone();
        m.merge(parts[order[1]].clone());
        m.merge(parts[order[2]].clone());
        m
    };
    let a = merge_in([0, 1, 2]);
    for order in [[1usize, 0, 2], [2, 1, 0], [0, 2, 1]] {
        let b = merge_in(order);
        for x in (0..1u64 << 12).step_by(37) {
            assert_eq!(a.estimate(x), b.estimate(x), "order {order:?}, item {x}");
        }
    }
}

#[test]
fn sharded_quantile_sketches_stay_in_error_class() {
    let n = 64_000u64;
    let stream: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
    // GK and merge-reduce merges preserve ε; KLL stays in the same class.
    for shards in [2usize, 4] {
        let gk: GkSummary = shard_and_merge(&stream, shards, |_, _| GkSummary::new(0.02));
        let kll: KllSketch =
            shard_and_merge(&stream, shards, |_, seed| KllSketch::with_seed(256, seed));
        let mr: MergeReduce = shard_and_merge(&stream, shards, |_, _| {
            MergeReduce::for_eps(0.02, n as usize)
        });
        for (name, v) in [
            ("gk", gk.estimate_quantile(0.5)),
            ("kll", kll.estimate_quantile(0.5)),
            ("merge-reduce", mr.estimate_quantile(0.5)),
        ] {
            let v = v.expect("non-empty") as f64;
            let err = (v + 1.0 - 0.5 * n as f64).abs() / n as f64;
            assert!(err <= 0.04, "K={shards} {name}: median rank error {err}");
        }
    }
}

#[test]
fn quantile_merges_are_order_insensitive_within_bounds() {
    // Deterministic quantile sketches may differ internally by merge
    // order, but every order must stay inside the error bound.
    let n = 48_000u64;
    let stream: Vec<u64> = (0..n).map(|i| (i * 48_271) % n).collect();
    let parts: Vec<GkSummary> = stream
        .chunks(16_000)
        .map(|c| {
            let mut s = GkSummary::new(0.02);
            c.iter().for_each(|&x| s.observe(x));
            s
        })
        .collect();
    for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
        let mut m = parts[order[0]].clone();
        m.merge(parts[order[1]].clone());
        m.merge(parts[order[2]].clone());
        assert_eq!(m.observed(), n);
        for q in [0.25, 0.5, 0.75] {
            let v = m.quantile(q).expect("non-empty") as f64;
            let err = (v + 1.0 - q * n as f64).abs() / n as f64;
            assert!(err <= 0.04, "order {order:?} q={q}: error {err}");
        }
    }
}

#[test]
fn sharded_counter_summaries_respect_their_merged_bounds() {
    let n = 90_000u64;
    let k = 40usize;
    // Three hitters at 20%, 10%, 5%; the rest near-distinct noise.
    let stream: Vec<u64> = (0..n)
        .map(|i| match i % 20 {
            0..=3 => 1,
            4 | 5 => 2,
            6 => 3,
            _ => 10_000 + i,
        })
        .collect();
    let truth = |x: u64| stream.iter().filter(|&&v| v == x).count() as u64;
    for shards in [2usize, 4, 8] {
        let mg: MisraGries = shard_and_merge(&stream, shards, |_, _| MisraGries::new(k));
        let ss: SpaceSaving = shard_and_merge(&stream, shards, |_, _| SpaceSaving::new(k));
        for x in [1u64, 2, 3] {
            let t = truth(x);
            let mg_est = mg.estimate(x);
            assert!(mg_est <= t, "K={shards} MG overcounted {x}");
            assert!(
                t - mg_est <= n / (k as u64 + 1),
                "K={shards} MG error {} > n/(k+1)",
                t - mg_est
            );
            let ss_est = ss.estimate(x);
            assert!(ss_est >= t, "K={shards} SS undercounted tracked {x}");
            assert!(
                ss_est - t <= n / k as u64,
                "K={shards} SS error {} > n/k",
                ss_est - t
            );
        }
        // Both must still surface the 20% hitter at a 15% threshold.
        assert!(mg.heavy_hitters(0.15).iter().any(|&(x, _)| x == 1));
        assert!(ss.heavy_hitters(0.15).iter().any(|&(x, _)| x == 1));
    }
}

// ---------------------------------------------------------------------------
// Property tests: arbitrary streams, shard counts, and merge orders.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reservoir sharded ingest + merge: the merged sample is always a
    /// size-min(k, n) subset of the stream with the full count.
    #[test]
    fn reservoir_shard_merge_invariants(
        n in 1usize..4_000,
        k in 1usize..200,
        shards in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let stream: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let mut sharded = ShardedSummary::new(
            shards,
            seed,
            |_, s| ReservoirSampler::with_seed(k, s),
        );
        sharded.ingest_batch(&stream);
        prop_assert_eq!(sharded.items_seen(), n);
        let merged = sharded.into_merged();
        prop_assert_eq!(merged.observed(), n);
        prop_assert_eq!(merged.sample().len(), k.min(n));
        for x in merged.sample() {
            prop_assert!(stream.contains(x));
        }
    }

    /// Bernoulli shard + merge: counts add exactly and every sampled
    /// element comes from the stream.
    #[test]
    fn bernoulli_shard_merge_invariants(
        n in 0usize..4_000,
        p in 0.0f64..=1.0,
        shards in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let stream: Vec<u64> = (0..n as u64).collect();
        let mut sharded = ShardedSummary::new(
            shards,
            seed,
            |_, s| BernoulliSampler::with_seed(p, s),
        );
        sharded.ingest_batch(&stream);
        let merged = sharded.into_merged();
        prop_assert_eq!(merged.observed(), n);
        if p >= 1.0 {
            prop_assert_eq!(merged.sample().len(), n);
        }
        for x in merged.sample() {
            prop_assert!((*x as usize) < n.max(1));
        }
    }

    /// Misra–Gries merged estimates never overcount and never trail the
    /// truth by more than n/(k+1), for any 2-way split point.
    #[test]
    fn misra_gries_merge_bound_any_split(
        n in 2usize..3_000,
        k in 1usize..60,
        cut_frac in 0.0f64..1.0,
        modulus in 1u64..50,
    ) {
        let stream: Vec<u64> = (0..n as u64).map(|i| i % modulus).collect();
        let cut = ((n as f64 * cut_frac) as usize).min(n - 1);
        let (lo, hi) = stream.split_at(cut);
        let mut a = MisraGries::new(k);
        let mut b = MisraGries::new(k);
        a.ingest_batch(lo);
        b.ingest_batch(hi);
        a.merge(b);
        prop_assert_eq!(a.observed(), n as u64);
        for x in 0..modulus {
            let t = stream.iter().filter(|&&v| v == x).count() as u64;
            let est = a.estimate(x);
            prop_assert!(est <= t);
            prop_assert!(t - est <= n as u64 / (k as u64 + 1));
        }
    }
}
