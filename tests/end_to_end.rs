//! End-to-end integration: theorem-sized samplers survive every adversary
//! in the suite, across set systems — the Theorem 1.2 guarantee exercised
//! through the full public API (core + streamgen).

use robust_sampling::core::adversary::{
    Adversary, GreedyDiscrepancyAdversary, QuantileHunterAdversary, RandomAdversary,
    StaticAdversary,
};
use robust_sampling::core::bounds;
use robust_sampling::core::game::AdaptiveGame;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler};
use robust_sampling::core::set_system::{IntervalSystem, PrefixSystem, SetSystem, SingletonSystem};
use robust_sampling::streamgen;

const N: usize = 12_000;
const UNIVERSE: u64 = 1 << 20;
const EPS: f64 = 0.12;
const DELTA: f64 = 0.05;

fn adversary_suite(seed: u64) -> Vec<Box<dyn Adversary<u64> + Send>> {
    vec![
        Box::new(RandomAdversary::new(UNIVERSE, seed)),
        Box::new(StaticAdversary::new(streamgen::sorted_ramp(N, UNIVERSE))),
        Box::new(StaticAdversary::new(streamgen::two_phase(
            N, UNIVERSE, seed,
        ))),
        Box::new(StaticAdversary::new(streamgen::zipf(
            N, UNIVERSE, 1.1, seed,
        ))),
        Box::new(GreedyDiscrepancyAdversary::new(UNIVERSE, 64, seed)),
        Box::new(QuantileHunterAdversary::new(UNIVERSE, seed)),
    ]
}

#[test]
fn reservoir_survives_all_adversaries_on_prefix_system() {
    let system = PrefixSystem::new(UNIVERSE);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), EPS, DELTA);
    for (i, mut adv) in adversary_suite(11).into_iter().enumerate() {
        let mut sampler = ReservoirSampler::with_seed(k, 100 + i as u64);
        let out = AdaptiveGame::new(N).run(&mut sampler, adv.as_mut());
        let d = out.discrepancy(&system);
        assert!(
            d.value <= EPS,
            "adversary {} ({}) beat theorem-sized reservoir: {} > {EPS}",
            i,
            adv.name(),
            d.value
        );
    }
}

#[test]
fn bernoulli_survives_all_adversaries_on_prefix_system() {
    let system = PrefixSystem::new(UNIVERSE);
    let p = bounds::bernoulli_p_robust(system.ln_cardinality(), EPS, DELTA, N);
    for (i, mut adv) in adversary_suite(23).into_iter().enumerate() {
        let mut sampler = BernoulliSampler::with_seed(p, 200 + i as u64);
        let out = AdaptiveGame::new(N).run(&mut sampler, adv.as_mut());
        let d = out.discrepancy(&system);
        assert!(
            d.value <= EPS,
            "adversary {} ({}) beat theorem-sized bernoulli: {} > {EPS}",
            i,
            adv.name(),
            d.value
        );
    }
}

#[test]
fn reservoir_survives_on_interval_system() {
    let system = IntervalSystem::new(UNIVERSE);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), EPS, DELTA);
    for (i, mut adv) in adversary_suite(37).into_iter().enumerate() {
        let mut sampler = ReservoirSampler::with_seed(k, 300 + i as u64);
        let out = AdaptiveGame::new(N).run(&mut sampler, adv.as_mut());
        let d = out.discrepancy(&system);
        assert!(
            d.value <= EPS,
            "adversary {i} beat reservoir on intervals: {} > {EPS}",
            d.value
        );
    }
}

#[test]
fn reservoir_survives_on_singleton_system() {
    let system = SingletonSystem::new(UNIVERSE);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), EPS, DELTA);
    // Zipf stream has genuine singleton mass; the hunter concentrates mass.
    for (i, mut adv) in adversary_suite(53).into_iter().enumerate() {
        let mut sampler = ReservoirSampler::with_seed(k, 400 + i as u64);
        let out = AdaptiveGame::new(N).run(&mut sampler, adv.as_mut());
        let d = out.discrepancy(&system);
        assert!(
            d.value <= EPS,
            "adversary {i} beat reservoir on singletons: {} > {EPS}",
            d.value
        );
    }
}

#[test]
fn expected_sample_sizes_agree_between_algorithms() {
    // The paper: both algorithms deliver total sample size
    // Θ((ln|R| + ln 1/δ)/ε²). Measure actual sizes.
    let system = PrefixSystem::new(UNIVERSE);
    let k = bounds::reservoir_k_robust(system.ln_cardinality(), EPS, DELTA);
    let p = bounds::bernoulli_p_robust(system.ln_cardinality(), EPS, DELTA, N);
    use robust_sampling::core::sampler::StreamSampler;
    let mut bern = BernoulliSampler::with_seed(p, 5);
    for x in streamgen::uniform(N, UNIVERSE, 6) {
        bern.observe(x);
    }
    let ratio = bern.sample().len() as f64 / k as f64;
    assert!(
        (1.0..=8.0).contains(&ratio),
        "sample sizes diverge: bernoulli {} vs reservoir {k}",
        bern.sample().len()
    );
}
