//! Tenant isolation, pinned as a property: a [`TenantArena`] must be
//! observationally equivalent to `K` fully isolated per-tenant
//! summaries — one `ReservoirSampler` per tenant, seeded
//! `tenant_seed(base_seed, t)` — no matter how tenants interleave, how
//! traffic is framed, or how often the budget forces checkpoint-evict /
//! revive cycles. Three layers:
//!
//! * **arena ≡ isolated summaries** — arbitrary interleavings, frame
//!   sizes, budgets, and robust/break-scale sizing: every touched
//!   tenant's sample, item count, quantiles, and count estimates are
//!   bit-identical to its private sampler;
//! * **eviction transparency** — the same stream through a one-slot
//!   arena (every switch checkpoints) and a never-evicting arena leaves
//!   every tenant bit-identical, so the eviction *schedule* is
//!   unobservable;
//! * **over the wire** — the same contract holds through the binary TCP
//!   protocol (`TINGEST`/`TSNAP`/`TQUANTILE`/`TCOUNT` frames against a
//!   live [`ServiceServer`]), with running-total acks and real arena
//!   eviction churn under a three-slot budget.
//!
//! [`TenantArena`]: robust_sampling::service::tenant::TenantArena
//! [`ServiceServer`]: robust_sampling::service::ServiceServer

use proptest::prelude::*;
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::service::tenant::{tenant_seed, TenantArena, TenantArenaConfig};
use robust_sampling::service::{ServiceClient, ServiceConfig, ServiceServer, SummaryService};
use std::collections::BTreeMap;

const UNIVERSE: u64 = 1 << 16;
const BASE_SEED: u64 = 42;

/// An arena holding exactly `budget_slots` resident tenants.
fn squeezed(budget_slots: usize, robust: bool, base_seed: u64) -> TenantArena {
    let cfg = TenantArenaConfig {
        universe: UNIVERSE,
        eps: 0.2,
        delta: 0.1,
        budget_bytes: 1, // clamped to one slot; replaced below
        base_seed,
        robust,
    };
    let slot = TenantArena::new(cfg).slot_bytes();
    TenantArena::new(TenantArenaConfig {
        budget_bytes: budget_slots * slot,
        ..cfg
    })
}

/// Feed an interleaved `(tenant, value)` stream into `sink` as
/// maximal same-tenant runs within `split`-sized windows — the framing
/// an ingest path would batch, without reordering anything.
fn for_each_run(pairs: &[(u64, u64)], split: usize, mut sink: impl FnMut(u64, &[u64])) {
    let mut frame: Vec<u64> = Vec::new();
    for window in pairs.chunks(split.max(1)) {
        let mut i = 0;
        while i < window.len() {
            let tenant = window[i].0;
            frame.clear();
            while i < window.len() && window[i].0 == tenant {
                frame.push(window[i].1);
                i += 1;
            }
            sink(tenant, &frame);
        }
    }
}

/// The per-tenant isolated comparators for `pairs` under the arena's
/// seeding contract, keyed by tenant.
fn isolated(
    pairs: &[(u64, u64)],
    k: usize,
    base_seed: u64,
) -> BTreeMap<u64, ReservoirSampler<u64>> {
    let mut map: BTreeMap<u64, ReservoirSampler<u64>> = BTreeMap::new();
    for &(t, v) in pairs {
        map.entry(t)
            .or_insert_with(|| ReservoirSampler::with_seed(k, tenant_seed(base_seed, t)))
            .observe(v);
    }
    map
}

/// The arena's quantile convention, computed from a raw sample.
fn sample_quantile(sample: &[u64], q: f64) -> Option<u64> {
    let mut sorted = sample.to_vec();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable();
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[target - 1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arena is `K` isolated summaries: for any interleaving, frame
    /// schedule, budget, and sizing mode, every touched tenant's whole
    /// observable surface matches its private sampler bit-for-bit —
    /// including tenants that are checkpointed cold when queried.
    #[test]
    fn arena_matches_isolated_summaries(
        budget_slots in 1usize..6,
        robust in any::<bool>(),
        base_seed in 0u64..10_000,
        pairs in proptest::collection::vec((0u64..12, 0u64..UNIVERSE), 0..600),
        split in 1usize..64,
    ) {
        let mut arena = squeezed(budget_slots, robust, base_seed);
        for_each_run(&pairs, split, |t, frame| {
            arena.ingest(t, frame);
        });
        let iso = isolated(&pairs, arena.reservoir_k(), base_seed);
        if iso.len() > arena.max_resident() {
            prop_assert!(
                arena.counters().evictions > 0,
                "{} tenants through {} slots must evict",
                iso.len(),
                arena.max_resident()
            );
        }
        for (&t, sampler) in &iso {
            prop_assert_eq!(arena.sample(t), sampler.sample());
            prop_assert_eq!(arena.items(t), sampler.observed());
            for q in [0.0, 0.5, 1.0] {
                prop_assert_eq!(arena.quantile(t, q), sample_quantile(sampler.sample(), q));
            }
            if let Some(&(_, probe)) = pairs.iter().find(|&&(pt, _)| pt == t) {
                let sample = sampler.sample();
                let want = if sample.is_empty() {
                    0.0
                } else {
                    let hits = sample.iter().filter(|&&v| v == probe).count();
                    hits as f64 / sample.len() as f64 * sampler.observed() as f64
                };
                prop_assert_eq!(arena.count(t, probe), want);
            }
        }
    }

    /// The eviction schedule is unobservable: the same stream through a
    /// one-slot arena (every tenant switch is a checkpoint-evict plus a
    /// revival) and through a never-evicting arena leaves every tenant
    /// in the identical state.
    #[test]
    fn eviction_schedule_is_transparent(
        robust in any::<bool>(),
        base_seed in 0u64..10_000,
        pairs in proptest::collection::vec((0u64..8, 0u64..UNIVERSE), 0..400),
        split in 1usize..32,
    ) {
        let mut tight = squeezed(1, robust, base_seed);
        let mut loose = squeezed(64, robust, base_seed);
        for_each_run(&pairs, split, |t, frame| {
            tight.ingest(t, frame);
            loose.ingest(t, frame);
        });
        prop_assert_eq!(loose.counters().evictions, 0);
        let tenants: std::collections::BTreeSet<u64> = pairs.iter().map(|&(t, _)| t).collect();
        for &t in &tenants {
            prop_assert_eq!(tight.sample(t), loose.sample(t));
            prop_assert_eq!(tight.items(t), loose.items(t));
        }
    }
}

/// The isolation contract through the binary TCP protocol: interleaved
/// tenant frames against a live server whose arena holds three slots
/// (so the eight tenants churn through real evict/revive cycles), with
/// every ack checked as a running per-tenant total and every query
/// answer compared to the tenant's private sampler.
#[test]
fn wire_protocol_preserves_tenant_isolation() {
    let tenants_cfg = TenantArenaConfig {
        universe: UNIVERSE,
        eps: 0.2,
        delta: 0.1,
        budget_bytes: 1, // clamped to one slot; replaced below
        base_seed: BASE_SEED,
        robust: true,
    };
    let slot = TenantArena::new(tenants_cfg).slot_bytes();
    let tenants_cfg = TenantArenaConfig {
        budget_bytes: 3 * slot,
        ..tenants_cfg
    };
    let k = TenantArena::new(tenants_cfg).reservoir_k();

    let svc = SummaryService::start(2, 7, 4096, |_, s| ReservoirSampler::with_seed(256, s));
    let server = ServiceServer::spawn(
        svc,
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            universe: UNIVERSE,
            workers: 2,
            tenants: Some(tenants_cfg),
        },
    )
    .expect("spawn tenant-aware server");
    let client = ServiceClient::connect_binary(server.addr()).expect("connect binary client");

    // Eight tenants, interleaved in rotating frame sizes so frames of
    // different tenants alternate on one connection.
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    let mut x = 0u64;
    for round in 0..40u64 {
        for t in 0..8u64 {
            let frame_len = 1 + ((round + t) % 7) as usize;
            for _ in 0..frame_len {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                pairs.push((t, x % UNIVERSE));
            }
        }
    }
    let mut sent: BTreeMap<u64, usize> = BTreeMap::new();
    for_each_run(&pairs, 16, |t, frame| {
        let acked = client.tenant_ingest(t, frame).expect("TINGEST frame");
        let total = sent.entry(t).or_insert(0);
        *total += frame.len();
        assert_eq!(acked, *total, "ack is the tenant's running item total");
    });

    let iso = isolated(&pairs, k, BASE_SEED);
    for (&t, sampler) in &iso {
        let (items, sample) = client.tenant_snapshot(t).expect("TSNAP");
        assert_eq!(items, sampler.observed(), "tenant {t} item count");
        assert_eq!(sample, sampler.sample(), "tenant {t} sample");
        assert_eq!(
            client.tenant_quantile(t, 0.5).expect("TQUANTILE"),
            sample_quantile(sampler.sample(), 0.5),
            "tenant {t} median"
        );
        let probe = pairs.iter().find(|&&(pt, _)| pt == t).unwrap().1;
        let want = {
            let sample = sampler.sample();
            let hits = sample.iter().filter(|&&v| v == probe).count();
            hits as f64 / sample.len().max(1) as f64 * sampler.observed() as f64
        };
        assert_eq!(client.tenant_count(t, probe).expect("TCOUNT"), want);
    }

    let stats = client.stats().expect("STATS");
    assert_eq!(stats.arena_tenants, 8, "all eight tenants known");
    assert!(
        stats.arena_evictions > 0,
        "eight tenants through three slots must evict"
    );
    client.quit().expect("QUIT");
}
