//! The parallel trial executor must be invisible in the results:
//! `threads(N)` produces bit-identical `RunStats` (and per-trial records)
//! to the sequential engine for every experiment family — adaptive,
//! continuous, and batch.

use robust_sampling::core::adversary::{QuantileHunterAdversary, RandomAdversary};
use robust_sampling::core::engine::ExperimentEngine;
use robust_sampling::core::game::ContinuousAdaptiveGame;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler, StreamSampler};
use robust_sampling::core::set_system::{IntervalSystem, PrefixSystem};
use robust_sampling::streamgen;

const THREADS: &[usize] = &[2, 4, 8];

#[test]
fn adaptive_runstats_are_bit_identical_across_thread_counts() {
    let system = PrefixSystem::new(1 << 18);
    let run = |threads: usize| {
        ExperimentEngine::new(2_500, 10)
            .with_base_seed(40)
            .threads(threads)
            .adaptive(
                &system,
                |s| ReservoirSampler::with_seed(64, s),
                |s| QuantileHunterAdversary::new(1 << 18, s),
            )
    };
    let seq = run(1);
    assert_eq!(seq.per_trial.len(), 10);
    for &t in THREADS {
        let par = run(t);
        assert_eq!(seq.per_trial, par.per_trial, "threads={t}");
    }
}

#[test]
fn adaptive_map_records_are_bit_identical_across_thread_counts() {
    // Full per-trial records (seed, sample, stored count), not just the
    // aggregated stats.
    let run = |threads: usize| {
        ExperimentEngine::new(1_200, 9)
            .with_base_seed(7)
            .threads(threads)
            .adaptive_map(
                |s| BernoulliSampler::with_seed(0.05, s),
                |s| RandomAdversary::new(1 << 16, s),
                |seed, _, out| (seed, out.sample, out.total_stored),
            )
    };
    let seq = run(1);
    for &t in THREADS {
        assert_eq!(seq, run(t), "threads={t}");
    }
}

#[test]
fn continuous_runstats_are_bit_identical_across_thread_counts() {
    let system = IntervalSystem::new(1 << 14);
    let game = ContinuousAdaptiveGame::geometric(3_000, 200, 0.25);
    let run = |threads: usize| {
        ExperimentEngine::new(3_000, 6)
            .with_base_seed(11)
            .threads(threads)
            .continuous_sup(
                &game,
                &system,
                0.25,
                |s| ReservoirSampler::with_seed(200, s),
                |s| RandomAdversary::new(1 << 14, s),
            )
    };
    let seq = run(1);
    assert_eq!(seq.per_trial.len(), 6);
    for &t in THREADS {
        assert_eq!(seq.per_trial, run(t).per_trial, "threads={t}");
    }
}

#[test]
fn batch_runstats_are_bit_identical_across_thread_counts() {
    let system = PrefixSystem::new(1 << 20);
    let run = |threads: usize| {
        ExperimentEngine::new(20_000, 8)
            .with_base_seed(3)
            .threads(threads)
            .batch(
                &system,
                |s| ReservoirSampler::with_seed(128, s),
                |s| streamgen::uniform(20_000, 1 << 20, s),
                |r| r.sample().to_vec(),
            )
    };
    let seq = run(1);
    assert_eq!(seq.per_trial.len(), 8);
    for &t in THREADS {
        assert_eq!(seq.per_trial, run(t).per_trial, "threads={t}");
    }
}

#[test]
fn batch_map_samples_are_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        ExperimentEngine::new(10_000, 5)
            .with_base_seed(70)
            .threads(threads)
            .batch_map(
                |s| ReservoirSampler::with_seed(64, s),
                |s| streamgen::zipf(10_000, 1 << 16, 1.1, s),
                |seed, stream, summary| (seed, stream.len(), summary.sample().to_vec()),
            )
    };
    let seq = run(1);
    for &t in THREADS {
        assert_eq!(seq, run(t), "threads={t}");
    }
}

#[test]
fn oversubscribed_thread_counts_are_harmless() {
    // More threads than trials must behave exactly like trials threads.
    let system = PrefixSystem::new(1 << 12);
    let run = |threads: usize| {
        ExperimentEngine::new(500, 3).threads(threads).adaptive(
            &system,
            |s| ReservoirSampler::with_seed(16, s),
            |s| RandomAdversary::new(1 << 12, s),
        )
    };
    assert_eq!(run(1).per_trial, run(64).per_trial);
}
