//! Property tests for the cluster's two determinism contracts:
//!
//! 1. **Cluster ≡ offline sharded merge** — an `N`-node cluster fed any
//!    frame schedule of any registry workload answers bit-identically
//!    to the offline [`ShardedSummary`] run with `K = N` shards and the
//!    same base seed (and, transitively, to a local in-process
//!    [`SummaryService`] of the same shape): the distributed boundary —
//!    process isolation, TCP, the binary frame protocol, the
//!    coordinator's shard-order merge — adds no randomness.
//! 2. **Coordinator views are consistent at every cadence boundary** —
//!    with aligned frames (multiples of `N * E` elements), every
//!    boundary's global view equals the offline sharded prefix merge at
//!    exactly that boundary, and at *any* point the coordinator's
//!    merged view equals the hand-merge of the per-node epoch states it
//!    was built from.
//!
//! Node processes are real: each case spawns `cluster_node` binaries on
//! ephemeral ports and speaks the binary admin protocol.

use proptest::prelude::*;
use robust_sampling::core::engine::{merge_in_shard_order, ShardedSummary, StreamSummary};
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::service::cluster::{ClusterConfig, ClusterRouter};
use robust_sampling::service::SummaryService;
use robust_sampling::streamgen;

/// Split `stream` into frames whose sizes cycle through `splits`.
fn frames<'a>(stream: &'a [u64], splits: &[usize]) -> Vec<&'a [u64]> {
    let mut rest = stream;
    let mut out = Vec::new();
    let mut i = 0;
    while !rest.is_empty() {
        let take = if splits.is_empty() {
            rest.len()
        } else {
            (splits[i % splits.len()] % rest.len()).max(1)
        };
        out.push(&rest[..take]);
        rest = &rest[take..];
        i += 1;
    }
    out
}

fn workload_stream(which: usize, n: usize, seed: u64) -> Vec<u64> {
    let registry = streamgen::registry();
    registry[which % registry.len()].materialize(n, 1 << 16, seed)
}

fn cluster(nodes: usize, base_seed: u64, epoch_every: usize, cap: usize) -> ClusterRouter {
    ClusterRouter::start(ClusterConfig {
        nodes,
        base_seed,
        epoch_every,
        cap,
        universe: 1 << 16,
        workers: 1,
        tenant_budget_bytes: None,
    })
    .expect("start cluster")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fresh-view cadence (`E = 1`): after any frame schedule the
    /// coordinator's merged view is bit-identical to the offline
    /// sharded run — same sample, same item counts — and every query
    /// kind (COUNT/QUANTILE/HH/KS) answers exactly as a local
    /// in-process service of the same shape does.
    #[test]
    fn cluster_ingest_equals_offline_sharded_merge(
        which in 0usize..16,
        nodes in 1usize..5,
        cap in 8usize..64,
        seed in 0u64..1_000,
        n in 1usize..2_500,
        splits in proptest::collection::vec(1usize..700, 0..6),
    ) {
        let stream = workload_stream(which, n, seed.wrapping_add(11));
        let mut offline = ShardedSummary::new(nodes, seed, |_, s| {
            ReservoirSampler::<u64>::with_seed(cap, s)
        });
        let mut local = SummaryService::start(nodes, seed, 1, |_, s| {
            ReservoirSampler::<u64>::with_seed(cap, s)
        });
        let mut router = cluster(nodes, seed, 1, cap);
        for frame in frames(&stream, &splits) {
            offline.ingest_batch(frame);
            local.ingest_frame(frame);
            router.ingest(frame).expect("cluster ingest");
        }
        let view = router.global_view::<ReservoirSampler<u64>>().expect("global view");
        let merged = offline.merged();
        prop_assert_eq!(view.items(), stream.len());
        prop_assert_eq!(view.summary().sample(), merged.sample());
        prop_assert_eq!(view.summary().observed(), stream.len());
        // Every query kind answers like the equivalent local service.
        let snap = local.snapshot();
        prop_assert_eq!(view.quantile(0.5), snap.quantile(0.5));
        prop_assert_eq!(view.count(stream[0]), snap.count(stream[0]));
        prop_assert_eq!(view.heavy(0.05), snap.heavy(0.05));
        prop_assert_eq!(view.ks_uniform(1 << 16), snap.ks_uniform(1 << 16));
    }

    /// Aligned cadence (frames of exactly `N * E` elements): *every*
    /// cluster cadence boundary's global view equals the offline
    /// sharded prefix merge at that boundary, with all nodes in epoch
    /// lockstep.
    #[test]
    fn every_cadence_boundary_view_matches_the_offline_prefix(
        which in 0usize..16,
        nodes in 1usize..5,
        epoch_every in 1usize..64,
        seed in 0u64..500,
        windows in 1usize..12,
    ) {
        let cadence = nodes * epoch_every;
        let stream = workload_stream(which, cadence * windows, seed.wrapping_add(5));
        let mut offline = ShardedSummary::new(nodes, seed, |_, s| {
            ReservoirSampler::<u64>::with_seed(32, s)
        });
        let mut router = cluster(nodes, seed, epoch_every, 32);
        for (m, frame) in stream.chunks(cadence).enumerate() {
            offline.ingest_batch(frame);
            router.ingest(frame).expect("cluster ingest");
            let view = router.global_view::<ReservoirSampler<u64>>().expect("global view");
            prop_assert_eq!(view.epoch(), m as u64 + 1);
            prop_assert_eq!(view.items(), (m + 1) * cadence);
            let merged = offline.merged();
            prop_assert_eq!(view.summary().sample(), merged.sample());
        }
    }

    /// At *any* pull point — aligned or not — the coordinator's global
    /// view is exactly the shard-order hand-merge of the per-node epoch
    /// states it reads, and the per-node states it reads are the nodes'
    /// published boundaries (items ≡ 0 mod the per-node cadence).
    #[test]
    fn coordinator_view_is_the_shard_order_merge_of_node_states(
        which in 0usize..16,
        nodes in 1usize..5,
        epoch_every in 1usize..48,
        seed in 0u64..500,
        n in 1usize..2_000,
        splits in proptest::collection::vec(1usize..500, 0..5),
    ) {
        let stream = workload_stream(which, n, seed.wrapping_add(23));
        let mut router = cluster(nodes, seed, epoch_every, 24);
        for frame in frames(&stream, &splits) {
            router.ingest(frame).expect("cluster ingest");
        }
        let mut parts = Vec::new();
        let mut items = 0usize;
        for j in 0..nodes {
            let (epoch, node_items, _, summary) = router
                .node_epoch_state::<ReservoirSampler<u64>>(j)
                .expect("node epoch state");
            // A published boundary is epoch-aligned: `epoch` publishes
            // of >= epoch_every elements each have happened.
            prop_assert!(node_items >= epoch as usize * epoch_every);
            prop_assert_eq!(node_items, summary.observed());
            items += node_items;
            parts.push(summary);
        }
        let hand_merged: ReservoirSampler<u64> = merge_in_shard_order(parts);
        let view = router.global_view::<ReservoirSampler<u64>>().expect("global view");
        prop_assert_eq!(view.items(), items);
        prop_assert_eq!(view.summary().sample(), hand_merged.sample());
        prop_assert_eq!(view.summary().observed(), hand_merged.observed());
    }
}

/// Non-property pin: the router's frame accounting and the nodes' acked
/// high-water marks advance in lockstep — the invariant replay-window
/// trimming relies on.
#[test]
fn frames_sent_equals_node_acked_high_water_mark() {
    let mut router = cluster(3, 7, 4, 16);
    let stream: Vec<u64> = (0..500).collect();
    for frame in stream.chunks(37) {
        router.ingest(frame).expect("cluster ingest");
    }
    for j in 0..3 {
        let (_, _, hwm, _) = router
            .node_epoch_state::<ReservoirSampler<u64>>(j)
            .expect("node epoch state");
        assert_eq!(hwm, router.frames_sent(j), "node {j}");
    }
}
