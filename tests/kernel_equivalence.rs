//! Bit-identity pins for the hot-path kernel pass: every loop the perf
//! pass rewrote (geometric-skip Bernoulli, Algorithm L reservoir, the
//! hybrid-bucket Zipf inversion, Count-Min row batching, KLL batched
//! compaction) is checked against an independent re-implementation of the
//! *pre-pass* arithmetic — the exact `floor()` + `is_finite()` gap draws,
//! the full-table `partition_point` inversion, the per-element sketch
//! walks — across arbitrary seeds, parameters, and batch split schedules.
//!
//! These are stricter than the `batch_equivalence` contract tests: they
//! don't just compare the library against itself, they pin the optimized
//! kernels to a from-scratch transcript of the old algorithms, so a
//! "faster but subtly different" regression cannot pass by being
//! consistently different on both paths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler, StreamSampler};
use robust_sampling::sketches::count_min::CountMin;
use robust_sampling::sketches::kll::KllSketch;
use robust_sampling::streamgen::{StreamSource, ZipfSource};

/// Feed `stream` to `ingest` in batches derived from `splits` (the same
/// schedule shape the `batch_equivalence` suite uses).
fn for_each_split<T>(stream: &[T], splits: &[usize], mut ingest: impl FnMut(&[T])) {
    let mut rest = stream;
    let mut i = 0;
    while !rest.is_empty() {
        let take = if splits.is_empty() {
            rest.len()
        } else {
            (splits[i % splits.len()] % rest.len()).max(1)
        };
        ingest(&rest[..take]);
        rest = &rest[take..];
        i += 1;
    }
}

fn scrambled(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

/// The pre-pass geometric gap: `floor(ln(1−u)/ln(1−p))` with an explicit
/// `is_finite` branch for the saturating tail.
fn legacy_bernoulli_gap(rng: &mut StdRng, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.random();
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if g.is_finite() {
        g as u64
    } else {
        u64::MAX
    }
}

/// Element-by-element transcript of the pre-pass Bernoulli sampler.
fn legacy_bernoulli_sample(p: f64, seed: u64, stream: &[u64]) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sample = Vec::new();
    if p <= 0.0 {
        return sample;
    }
    let mut skip = legacy_bernoulli_gap(&mut rng, p);
    for &x in stream {
        if skip == 0 {
            sample.push(x);
            skip = legacy_bernoulli_gap(&mut rng, p);
        } else {
            skip -= 1;
        }
    }
    sample
}

/// The pre-pass Algorithm L gap: `floor(ln u / ln(1−w))` with the
/// `is_finite` branch and the explicit underflowed-threshold arm.
fn legacy_algo_l_gap(rng: &mut StdRng, w: f64) -> u64 {
    let u2: f64 = rng.random();
    let denom = (1.0 - w).ln();
    if denom < 0.0 {
        let g = (u2.ln() / denom).floor();
        if g.is_finite() {
            g as u64
        } else {
            u64::MAX
        }
    } else {
        u64::MAX
    }
}

/// Element-by-element transcript of the pre-pass Algorithm L reservoir:
/// fill, then per store draw slot `j`, decay `w` by `u1`, and draw the
/// next gap from `u2` — three RNG words per store, in that order.
fn legacy_reservoir_sample(k: usize, seed: u64, stream: &[u64]) -> (Vec<u64>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<u64> = Vec::with_capacity(k);
    let mut total_stored = 0usize;
    let mut w = 1.0f64;
    let mut skip = 0u64;
    let next_gap = |rng: &mut StdRng, w: &mut f64| {
        let u1: f64 = rng.random();
        *w *= (u1.ln() / k as f64).exp();
        legacy_algo_l_gap(rng, *w)
    };
    for &x in stream {
        if reservoir.len() < k {
            reservoir.push(x);
            total_stored += 1;
            if reservoir.len() == k {
                w = 1.0;
                skip = next_gap(&mut rng, &mut w);
            }
            continue;
        }
        if skip > 0 {
            skip -= 1;
            continue;
        }
        let j = rng.random_range(0..k);
        reservoir[j] = x;
        total_stored += 1;
        skip = next_gap(&mut rng, &mut w);
    }
    (reservoir, total_stored)
}

/// Full-table inverse-CDF transcript of the pre-pass Zipf draw: rebuild
/// the truncated harmonic CDF and answer every draw with a whole-table
/// `partition_point`, no bucket index.
fn legacy_zipf_stream(n: usize, universe: u64, s: f64, seed: u64) -> Vec<u64> {
    let ranks = universe.min(1 << 20) as usize;
    let mut cdf = Vec::with_capacity(ranks);
    let mut acc = 0.0f64;
    for r in 0..ranks {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random::<f64>() * total;
            let r = cdf.partition_point(|&c| c < u);
            (r as u64).min(universe - 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Branch-free Bernoulli skip kernel == pre-pass `floor`/`is_finite`
    /// gap walk, for any (p, seed, length, split schedule).
    #[test]
    fn bernoulli_kernel_matches_legacy_transcript(
        p in 0.0f64..=1.0,
        seed in 0u64..10_000,
        n in 0usize..4_000,
        splits in proptest::collection::vec(1usize..500, 0..6),
    ) {
        let stream = scrambled(n);
        let expect = legacy_bernoulli_sample(p, seed, &stream);
        let mut s = BernoulliSampler::with_seed(p, seed);
        for_each_split(&stream, &splits, |chunk| s.observe_batch(chunk));
        prop_assert_eq!(s.sample(), expect.as_slice());
        prop_assert_eq!(s.observed(), n);
        prop_assert_eq!(s.total_stored(), expect.len());
    }

    /// Small-p stress: the saturating-cast tail (gap ≈ u64::MAX) and the
    /// pipelined batch loop agree with the legacy walk when stores are
    /// extremely rare.
    #[test]
    fn bernoulli_kernel_matches_legacy_at_tiny_p(
        p_exp in 4u32..24,
        seed in 0u64..10_000,
        n in 0usize..8_000,
    ) {
        let p = 0.5f64.powi(p_exp as i32);
        let stream = scrambled(n);
        let expect = legacy_bernoulli_sample(p, seed, &stream);
        let mut s = BernoulliSampler::with_seed(p, seed);
        s.observe_batch(&stream);
        prop_assert_eq!(s.sample(), expect.as_slice());
    }

    /// Pipelined Algorithm L kernel == pre-pass per-element transcript
    /// (slot, threshold decay, gap: three RNG words per store, in order).
    #[test]
    fn reservoir_kernel_matches_legacy_transcript(
        k in 1usize..300,
        seed in 0u64..10_000,
        n in 0usize..4_000,
        splits in proptest::collection::vec(1usize..500, 0..6),
    ) {
        let stream = scrambled(n);
        let (expect, expect_stored) = legacy_reservoir_sample(k, seed, &stream);
        let mut s = ReservoirSampler::with_seed(k, seed);
        for_each_split(&stream, &splits, |chunk| s.observe_batch(chunk));
        prop_assert_eq!(s.sample(), expect.as_slice());
        prop_assert_eq!(s.observed(), n);
        prop_assert_eq!(s.total_stored(), expect_stored);
    }

    /// Hybrid-bucket Zipf inversion == whole-table `partition_point` on a
    /// freshly rebuilt CDF, under any chunk schedule.
    #[test]
    fn zipf_bucket_index_matches_full_cdf_inversion(
        n in 1usize..3_000,
        universe_log in 1u32..22,
        s in 0.2f64..3.0,
        seed in 0u64..10_000,
        chunk in 1usize..700,
    ) {
        let universe = 1u64 << universe_log;
        let expect = legacy_zipf_stream(n, universe, s, seed);
        let mut src = ZipfSource::new(n, universe, s, seed);
        let mut got = Vec::new();
        while src.next_chunk(&mut got, chunk) > 0 {}
        prop_assert_eq!(got, expect);
    }

    /// Cache-conscious Count-Min row batching == per-element updates:
    /// identical counter array, estimates, and observed count for any
    /// split schedule (including splits straddling the 1024-element
    /// pre-hash chunks).
    #[test]
    fn count_min_batch_matches_elementwise(
        depth in 1usize..6,
        width_log in 1u32..12,
        seed in 0u64..10_000,
        n in 0usize..5_000,
        splits in proptest::collection::vec(1usize..2_500, 0..6),
    ) {
        let width = 1usize << width_log;
        let stream = scrambled(n);
        let mut by_element = CountMin::with_seed(depth, width, seed);
        for &x in &stream {
            by_element.observe(x);
        }
        let mut by_batch = CountMin::with_seed(depth, width, seed);
        for_each_split(&stream, &splits, |chunk| by_batch.observe_batch(chunk));
        prop_assert_eq!(by_element.counters(), by_batch.counters());
        prop_assert_eq!(by_element.observed(), by_batch.observed());
        for &x in stream.iter().take(32) {
            prop_assert_eq!(by_element.estimate(x), by_batch.estimate(x));
        }
    }

    /// Batched KLL ingestion (level-0 bulk append + in-place compaction)
    /// == per-element inserts: identical ranks, quantiles, level count,
    /// and space for any split schedule.
    #[test]
    fn kll_batch_matches_elementwise(
        k in 8usize..256,
        seed in 0u64..10_000,
        n in 0usize..5_000,
        splits in proptest::collection::vec(1usize..2_500, 0..6),
    ) {
        let stream = scrambled(n);
        let mut by_element = KllSketch::with_seed(k, seed);
        for &x in &stream {
            by_element.observe(x);
        }
        let mut by_batch = KllSketch::with_seed(k, seed);
        for_each_split(&stream, &splits, |chunk| by_batch.observe_batch(chunk));
        prop_assert_eq!(by_element.observed(), by_batch.observed());
        prop_assert_eq!(by_element.levels(), by_batch.levels());
        prop_assert_eq!(by_element.space(), by_batch.space());
        for &x in stream.iter().take(32) {
            prop_assert_eq!(by_element.rank(x), by_batch.rank(x));
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            prop_assert_eq!(by_element.quantile(q), by_batch.quantile(q));
        }
    }
}

/// Deterministic spot check pinning the Bernoulli p = 1 fast path (store
/// everything, consume no randomness) against continued streaming.
#[test]
fn bernoulli_p1_fast_path_stores_everything_and_streams_on() {
    let stream = scrambled(1_000);
    let mut s = BernoulliSampler::with_seed(1.0, 7);
    s.observe_batch(&stream[..600]);
    s.observe_batch(&stream[600..]);
    assert_eq!(s.sample(), &stream[..]);
    assert_eq!(s.total_stored(), 1_000);
}
