//! Source/materialized equivalence: every registered workload's chunked
//! source output — under *any* chunk-size schedule — is byte-identical to
//! the legacy `Vec` generator at the same seed, and per-seed determinism
//! holds across runs. This is the contract that makes lazy sources a pure
//! memory optimization: consumers may pull frames of any size without
//! changing a single element.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robust_sampling::core::adversary::{SourceAdversary, StaticAdversary};
use robust_sampling::core::approx::{prefix_discrepancy, source_prefix_discrepancy};
use robust_sampling::core::engine::{ShardedSummary, StreamSummary};
use robust_sampling::core::game::AdaptiveGame;
use robust_sampling::core::sampler::{ReservoirSampler, StreamSampler};
use robust_sampling::streamgen;
use streamgen::{registry, LenHint, SliceSource, StreamSource};

/// Drain a source with a deterministic but irregular chunk schedule
/// derived from `schedule_seed` (sizes cycle through 1..=97, scaled).
fn drain_with_schedule(mut source: impl StreamSource<u64>, schedule_seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut state = schedule_seed;
    loop {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let chunk = 1 + (state >> 33) as usize % 97;
        if source.next_chunk(&mut out, chunk) == 0 {
            return out;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunk-size schedules never change a registered workload's stream.
    #[test]
    fn chunked_output_equals_materialized_for_every_workload(
        n in 1usize..2_000,
        universe_log in 1u32..40,
        seed in 0u64..10_000,
        schedule_seed in 0u64..1_000,
    ) {
        let universe = 1u64 << universe_log;
        for w in registry() {
            let eager = w.materialize(n, universe, seed);
            let chunked = drain_with_schedule(w.source(n, universe, seed), schedule_seed);
            prop_assert_eq!(&eager, &chunked, "{} differs under chunking", w.name);
            // Per-seed determinism across independent instantiations.
            let again = w.materialize(n, universe, seed);
            prop_assert_eq!(&eager, &again, "{} not deterministic", w.name);
        }
    }

    /// Exhausted sources keep reporting empty, and length hints count down
    /// exactly for the finite generators.
    #[test]
    fn len_hints_track_consumption(
        n in 1usize..500,
        seed in 0u64..1_000,
    ) {
        for w in registry() {
            let mut src = w.source(n, 1 << 20, seed);
            prop_assert_eq!(src.len_hint(), LenHint::Exact(n));
            let mut buf = Vec::new();
            let got = src.next_chunk(&mut buf, n / 2 + 1);
            prop_assert_eq!(src.len_hint(), LenHint::Exact(n - got));
            while src.next_chunk(&mut buf, 64) > 0 {}
            prop_assert_eq!(src.len_hint(), LenHint::Exact(0));
            prop_assert_eq!(src.next_chunk(&mut buf, 64), 0, "{} revived", w.name);
            prop_assert_eq!(buf.len(), n);
        }
    }

    /// The streaming one-pass KS judgment equals the offline sweep on
    /// every registered workload.
    #[test]
    fn streaming_ks_equals_offline_ks_on_workloads(
        seed in 0u64..500,
        k in 1usize..64,
    ) {
        let n = 4_000;
        for w in registry() {
            let stream = w.materialize(n, 1 << 16, seed);
            let mut sampler = ReservoirSampler::with_seed(k, seed ^ 0xABCD);
            sampler.observe_batch(&stream);
            let sample = sampler.sample().to_vec();
            let offline = prefix_discrepancy(&stream, &sample).value;
            let streaming =
                source_prefix_discrepancy(&mut *w.source(n, 1 << 16, seed), &sample).value;
            prop_assert!((offline - streaming).abs() < 1e-12,
                "{}: offline {} != streaming {}", w.name, offline, streaming);
        }
    }
}

/// Point sources agree with their materialized wrappers under uneven
/// chunking.
#[test]
fn point_sources_match_materialized() {
    let centers = [(10i64, 40i64), (200, 90)];
    let eager = streamgen::clustered_points(1_500, 256, &centers, 7, 3);
    let mut src = streamgen::ClusteredPointsSource::new(1_500, 256, &centers, 7, 3);
    let mut lazy = Vec::new();
    let mut chunk = 1usize;
    while src.next_chunk(&mut lazy, chunk) > 0 {
        chunk = chunk * 2 + 1;
    }
    assert_eq!(eager, lazy);

    let eager_grid = streamgen::uniform_grid_points(900, 128, 5);
    let mut grid_src = streamgen::UniformGridPointsSource::new(900, 128, 5);
    let mut lazy_grid = Vec::new();
    while grid_src.next_chunk(&mut lazy_grid, 13) > 0 {}
    assert_eq!(eager_grid, lazy_grid);
}

/// A game driven by a lazily-pulled workload is identical to the same
/// game driven by the pre-materialized stream.
#[test]
fn games_see_identical_streams_from_sources_and_vecs() {
    let n = 3_000;
    for w in registry() {
        let stream = w.materialize(n, 1 << 18, 7);
        let mut s1 = ReservoirSampler::with_seed(48, 11);
        let o1 = AdaptiveGame::new(n).run(&mut s1, &mut StaticAdversary::new(stream.clone()));
        let mut s2 = ReservoirSampler::with_seed(48, 11);
        let mut adv = SourceAdversary::with_frame(w.source(n, 1 << 18, 7), 113);
        let o2 = AdaptiveGame::new(n).run(&mut s2, &mut adv);
        assert_eq!(o1.stream, o2.stream, "{} stream drifted", w.name);
        assert_eq!(o1.sample, o2.sample, "{} sample drifted", w.name);
    }
}

/// Sharded frame-pulled ingest of a registry source equals whole-stream
/// batched ingest, shard by shard.
#[test]
fn sharded_ingest_source_equals_ingest_batch_per_workload() {
    let n = 30_000;
    for w in registry() {
        let stream = w.materialize(n, 1 << 22, 5);
        let mk = || ShardedSummary::new(4, 77, |_, s| ReservoirSampler::<u64>::with_seed(64, s));
        let mut whole = mk();
        whole.ingest_batch(&stream);
        let mut framed = mk();
        let total = framed.ingest_source(&mut *w.source(n, 1 << 22, 5), 1 << 12);
        assert_eq!(total, n);
        for (a, b) in whole.shards().iter().zip(framed.shards()) {
            assert_eq!(a.sample(), b.sample(), "{} shard state drifted", w.name);
        }
    }
}

/// Zipf's cached table must not change what the generator emits (the
/// cache is a pure hoist of per-call table construction).
#[test]
fn zipf_cache_is_transparent_across_parameter_interleavings() {
    // Interleave two parameterizations so both hit and miss the cache.
    let a1 = streamgen::zipf(5_000, 1 << 18, 1.2, 42);
    let b1 = streamgen::zipf(5_000, 1 << 18, 1.7, 42);
    let a2 = streamgen::zipf(5_000, 1 << 18, 1.2, 42);
    let b2 = streamgen::zipf(5_000, 1 << 18, 1.7, 42);
    assert_eq!(a1, a2);
    assert_eq!(b1, b2);
    assert_ne!(a1, b1);
    // And the chunked source sees the same table.
    let lazy = streamgen::materialize(streamgen::ZipfSource::new(5_000, 1 << 18, 1.2, 42));
    assert_eq!(a1, lazy);
}

/// SliceSource is the identity adapter: judging through it matches the
/// offline judgment exactly.
#[test]
fn slice_source_judgment_is_identity() {
    let stream = streamgen::two_phase(10_000, 1 << 16, 3);
    let sample: Vec<u64> = stream.iter().copied().step_by(97).collect();
    let offline = prefix_discrepancy(&stream, &sample);
    let streaming = source_prefix_discrepancy(&mut SliceSource::new(&stream), &sample);
    assert!((offline.value - streaming.value).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Pareto source's cached `−1/α` exponent is a pure hoist:
    /// outputs are bit-identical to the legacy inline
    /// `powf(-1.0 / alpha)` inverse-CDF, under any chunk schedule.
    #[test]
    fn pareto_cached_exponent_matches_inline_inversion(
        n in 1usize..3_000,
        universe_log in 1u32..40,
        alpha in 0.05f64..8.0,
        seed in 0u64..10_000,
        chunk in 1usize..700,
    ) {
        let universe = 1u64 << universe_log;
        let cap = (universe - 1) as f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let expect: Vec<u64> = (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                let x = (1.0 - u).powf(-1.0 / alpha).ceil() - 1.0;
                x.min(cap) as u64
            })
            .collect();
        let mut src = streamgen::ParetoSource::new(n, universe, alpha, seed);
        let mut got = Vec::new();
        while src.next_chunk(&mut got, chunk) > 0 {}
        prop_assert_eq!(got, expect);
    }
}
