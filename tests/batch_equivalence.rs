//! Property tests for the engine contract: `ingest_batch` must be a pure
//! optimization — for identical seeds and identical element order, the
//! batched path and the element-wise `observe` path must produce
//! *identical* summaries (same retained sample, same counters, same RNG
//! stream), for arbitrary parameters and arbitrary batch split points.

use proptest::prelude::*;
use robust_sampling::core::engine::StreamSummary;
use robust_sampling::core::sampler::{
    BernoulliSampler, EveryKthSampler, ReservoirSampler, StreamSampler,
};

/// Feed `stream` in batches whose sizes are derived from `splits`.
fn ingest_in_batches<T: Clone, S: StreamSummary<T>>(s: &mut S, stream: &[T], splits: &[usize]) {
    let mut rest = stream;
    let mut i = 0;
    while !rest.is_empty() {
        let take = if splits.is_empty() {
            rest.len()
        } else {
            (splits[i % splits.len()] % rest.len()).max(1)
        };
        s.ingest_batch(&rest[..take]);
        rest = &rest[take..];
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bernoulli: batched == element-wise for any (p, seed, stream
    /// length, batch splits) — including p = 0 and p = 1.
    #[test]
    fn bernoulli_batch_equals_elementwise(
        p in 0.0f64..=1.0,
        seed in 0u64..10_000,
        n in 0usize..4_000,
        splits in proptest::collection::vec(1usize..500, 0..6),
    ) {
        let stream: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let mut by_element = BernoulliSampler::with_seed(p, seed);
        for &x in &stream {
            by_element.observe(x);
        }
        let mut by_batch = BernoulliSampler::with_seed(p, seed);
        ingest_in_batches(&mut by_batch, &stream, &splits);
        prop_assert_eq!(by_element.sample(), by_batch.sample());
        prop_assert_eq!(by_element.observed(), by_batch.observed());
        prop_assert_eq!(by_element.total_stored(), by_batch.total_stored());
    }

    /// Reservoir: batched == element-wise for any (k, seed, stream
    /// length, batch splits) — including streams shorter than k and
    /// splits landing inside the fill phase.
    #[test]
    fn reservoir_batch_equals_elementwise(
        k in 1usize..300,
        seed in 0u64..10_000,
        n in 0usize..4_000,
        splits in proptest::collection::vec(1usize..500, 0..6),
    ) {
        let stream: Vec<u64> = (0..n as u64).collect();
        let mut by_element = ReservoirSampler::with_seed(k, seed);
        for &x in &stream {
            by_element.observe(x);
        }
        let mut by_batch = ReservoirSampler::with_seed(k, seed);
        ingest_in_batches(&mut by_batch, &stream, &splits);
        prop_assert_eq!(by_element.sample(), by_batch.sample());
        prop_assert_eq!(by_element.observed(), by_batch.observed());
        prop_assert_eq!(by_element.total_stored(), by_batch.total_stored());
    }

    /// The deterministic strawman, same contract.
    #[test]
    fn every_kth_batch_equals_elementwise(
        stride in 1usize..50,
        n in 0usize..2_000,
        splits in proptest::collection::vec(1usize..300, 0..5),
    ) {
        let stream: Vec<u64> = (0..n as u64).collect();
        let mut by_element = EveryKthSampler::new(stride);
        for &x in &stream {
            by_element.observe(x);
        }
        let mut by_batch = EveryKthSampler::new(stride);
        ingest_in_batches(&mut by_batch, &stream, &splits);
        prop_assert_eq!(
            StreamSampler::sample(&by_element),
            StreamSampler::sample(&by_batch)
        );
        prop_assert_eq!(by_element.observed(), by_batch.observed());
    }

    /// Interleaving observe and ingest_batch arbitrarily also agrees: the
    /// gap state is shared, not per-path.
    #[test]
    fn mixed_ingestion_agrees(
        k in 1usize..100,
        seed in 0u64..5_000,
        n in 0usize..2_000,
        boundary in 0usize..2_000,
    ) {
        let stream: Vec<u64> = (0..n as u64).collect();
        let cut = boundary.min(n);
        let mut pure = ReservoirSampler::with_seed(k, seed);
        for &x in &stream {
            pure.observe(x);
        }
        let mut mixed = ReservoirSampler::with_seed(k, seed);
        for &x in &stream[..cut] {
            mixed.observe(x);
        }
        mixed.ingest_batch(&stream[cut..]);
        prop_assert_eq!(pure.sample(), mixed.sample());
        prop_assert_eq!(pure.total_stored(), mixed.total_stored());
    }
}
