//! Regression tests pinning the paper's two punchlines against the
//! bisection-style adversary, with deterministic seeds:
//!
//! * **Theorem 1.2 (robustness).** At the robust sample size — `ln|R|`
//!   in place of the VC dimension — the Figure 3 bisection adversary
//!   cannot make the sample unrepresentative: over a `u64` universe its
//!   precision budget collapses (`exhausted`), and the final discrepancy
//!   stays within ε.
//! * **Theorem 1.3 (the attack).** Below roughly `ln N / (6 ln n)` the
//!   same adversary provably wins with probability ≥ 1/2: the sample is
//!   trapped among the smallest stream elements and the discrepancy
//!   approaches 1.
//!
//! All games run through the [`ExperimentEngine`], so these tests also
//! pin the engine's seed-decorrelation plumbing.

use robust_sampling::core::adversary::DiscreteAttackAdversary;
use robust_sampling::core::approx::prefix_discrepancy;
use robust_sampling::core::bounds;
use robust_sampling::core::engine::ExperimentEngine;
use robust_sampling::core::sampler::{BernoulliSampler, ReservoirSampler};

const UNIVERSE: u64 = 1 << 62;

/// (exhausted, discrepancy, sample trapped among k' smallest) per trial.
fn run_reservoir(n: usize, k: usize, trials: usize, base_seed: u64) -> Vec<(bool, f64, bool)> {
    ExperimentEngine::new(n, trials)
        .with_base_seed(base_seed)
        .adaptive_map(
            |s| ReservoirSampler::with_seed(k, s),
            |_| DiscreteAttackAdversary::for_reservoir(k, n, UNIVERSE),
            |_, adv, out| {
                let mut sorted = out.stream.clone();
                sorted.sort_unstable();
                let cutoff = sorted[out.total_stored - 1];
                (
                    adv.exhausted(),
                    prefix_discrepancy(&out.stream, &out.sample).value,
                    out.sample.iter().all(|&x| x <= cutoff),
                )
            },
        )
}

fn run_bernoulli(n: usize, p: f64, trials: usize, base_seed: u64) -> Vec<(bool, f64, bool)> {
    ExperimentEngine::new(n, trials)
        .with_base_seed(base_seed)
        .adaptive_map(
            |s| BernoulliSampler::with_seed(p, s),
            |_| DiscreteAttackAdversary::for_bernoulli(p, n, UNIVERSE),
            |_, adv, out| {
                let mut sorted = out.stream.clone();
                sorted.sort_unstable();
                let s = out.sample.len();
                let mut sample_sorted = out.sample.clone();
                sample_sorted.sort_unstable();
                (
                    adv.exhausted(),
                    prefix_discrepancy(&out.stream, &out.sample).value,
                    !out.sample.is_empty() && sample_sorted == sorted[..s],
                )
            },
        )
}

// ---------------------------------------------------------------------------
// Theorem 1.2: the robust size defeats the bisection adversary
// ---------------------------------------------------------------------------

#[test]
fn reservoir_at_theorem_12_size_beats_bisection_adversary() {
    let n = 300;
    let eps = 0.2;
    // ln|R| of the full u64-prefix universe: the attack's own playground.
    let k = bounds::reservoir_k_robust((UNIVERSE as f64).ln(), eps, 0.1);
    assert!(k > bounds::attack_reservoir_k_max((UNIVERSE as f64).ln(), n) as usize);
    for (seed, (exhausted, disc, _)) in run_reservoir(n, k, 8, 0).into_iter().enumerate() {
        // The attack must either run out of precision or leave an
        // eps-representative sample — it can never win.
        assert!(
            exhausted || disc <= eps,
            "seed {seed}: attack beat the Theorem 1.2 size (exhausted={exhausted}, d={disc})"
        );
    }
}

#[test]
fn bernoulli_at_theorem_12_rate_beats_bisection_adversary() {
    let n = 20_000;
    let eps = 0.2;
    let p = bounds::bernoulli_p_robust((UNIVERSE as f64).ln(), eps, 0.1, n);
    assert!(p > bounds::attack_bernoulli_p_max((UNIVERSE as f64).ln(), n));
    for (seed, (exhausted, disc, _)) in run_bernoulli(n, p, 4, 0).into_iter().enumerate() {
        assert!(
            exhausted || disc <= eps,
            "seed {seed}: attack beat the Theorem 1.2 rate (exhausted={exhausted}, d={disc})"
        );
    }
}

// ---------------------------------------------------------------------------
// Theorem 1.3: below the threshold the same adversary provably wins
// ---------------------------------------------------------------------------

/// The Claim 5.1 precision budget: the attack is in its winning regime
/// when the expected nats it spends fit below `ln(N/n)`. (The closed-form
/// `attack_*_max` ceilings carry the proof's worst-case constants and are
/// vacuously small at u64 precision; the budget arithmetic is the honest
/// sub-threshold witness, and is what experiment E2 sweeps.)
fn within_budget(expected_insertions: f64, p_prime: f64, n: usize) -> bool {
    let cost = expected_insertions * (1.0 / p_prime).ln() + n as f64 * p_prime;
    cost <= (UNIVERSE as f64).ln() - (n as f64).ln()
}

#[test]
fn reservoir_below_theorem_13_threshold_loses_to_bisection_adversary() {
    let n = 200;
    let k = 1;
    let p_prime = (4.0 * k as f64 * (n as f64).ln() / n as f64).max((n as f64).ln() / n as f64);
    let expected_insertions = k as f64 * (1.0 + (n as f64 / k as f64).ln());
    assert!(within_budget(expected_insertions, p_prime, n));
    let runs = run_reservoir(n, k, 12, 100);
    // Theorem 1.3 promises wins with probability >= 1/2; these seeds are
    // pinned, so demand a strict majority of landed attacks.
    let wins = runs
        .iter()
        .filter(|(exhausted, disc, trapped)| !exhausted && *trapped && *disc > 0.5)
        .count();
    assert!(
        wins >= 7,
        "attack won only {wins}/12 against sub-threshold reservoir: {runs:?}"
    );
}

#[test]
fn bernoulli_below_theorem_13_threshold_loses_to_bisection_adversary() {
    let n = 300;
    let p = 0.01f64;
    let p_prime = p.max((n as f64).ln() / n as f64);
    assert!(within_budget(n as f64 * p_prime, p_prime, n));
    let runs = run_bernoulli(n, p, 12, 100);
    let wins = runs
        .iter()
        .filter(|(exhausted, disc, smallest)| !exhausted && *smallest && *disc > 0.5)
        .count();
    assert!(
        wins >= 7,
        "attack won only {wins}/12 against sub-threshold bernoulli: {runs:?}"
    );
}

#[test]
fn thresholds_separate_the_two_regimes() {
    // The Theorem 1.2 size always clears the Theorem 1.3 attackable
    // ceiling — the "nearly matching" bounds never contradict.
    for n in [300usize, 10_000] {
        let ln_r = (UNIVERSE as f64).ln();
        let k_robust = bounds::reservoir_k_robust(ln_r, 0.2, 0.1) as f64;
        let k_attack = bounds::attack_reservoir_k_max(ln_r, n);
        assert!(k_robust > k_attack, "n={n}: {k_robust} <= {k_attack}");
    }
}
